package core

import (
	"fmt"
	"time"

	"insitu/internal/lp"
	"insitu/internal/milp"
)

// This file implements the paper's stated future work (§6): "extend this
// work to optimally schedule the analyses computations on different
// resources", i.e. choose per analysis between in-situ execution (on the
// simulation resource, counted against the simulation-site threshold) and
// co-analysis execution (on dedicated staging resources, paying a network
// transfer of the analysis input instead of the compute time).

// Site is where an analysis executes.
type Site int

// Placement sites.
const (
	InSitu Site = iota // simulation resource, same address space
	CoAnalysis
)

// String names the site.
func (s Site) String() string {
	switch s {
	case InSitu:
		return "in-situ"
	case CoAnalysis:
		return "co-analysis"
	}
	return fmt.Sprintf("Site(%d)", int(s))
}

// PlacementSpec extends AnalysisSpec with the co-analysis cost terms.
type PlacementSpec struct {
	AnalysisSpec
	// TransferBytes is the simulation data shipped to the staging site per
	// analysis step when running in co-analysis mode.
	TransferBytes int64
	// StageMem is the staging-site memory the analysis occupies when placed
	// there (0 defaults to FM+CM).
	StageMem int64
}

// PlacementResources extends Resources with the staging side.
type PlacementResources struct {
	Resources
	// NetBandwidth is the simulation-to-staging network bandwidth in
	// bytes/s; the per-analysis transfer time TransferBytes/NetBandwidth is
	// charged against the simulation-site threshold (the simulation blocks
	// while its memory is being shipped).
	NetBandwidth float64
	// StageMemTotal is the memory available on the staging nodes.
	StageMemTotal int64
	// StageTimeTotal bounds the total compute time on the staging resource
	// (0 = unconstrained: staging nodes are dedicated).
	StageTimeTotal float64
}

// Validate rejects invalid envelopes.
func (r PlacementResources) Validate() error {
	if err := r.Resources.Validate(); err != nil {
		return err
	}
	if r.NetBandwidth <= 0 {
		return fmt.Errorf("core: placement needs a positive network bandwidth")
	}
	if r.StageMemTotal < 0 || r.StageTimeTotal < 0 {
		return fmt.Errorf("core: negative staging resource")
	}
	return nil
}

// PlacementSchedule is AnalysisSchedule plus the chosen site.
type PlacementSchedule struct {
	AnalysisSchedule
	Site Site
	// SimSiteTime is this analysis' contribution to the simulation-site
	// threshold (full cost in-situ; transfer cost only in co-analysis).
	SimSiteTime float64
	// StageTime is the compute time consumed on the staging resource (0 for
	// in-situ placement).
	StageTime float64
}

// PlacementRecommendation is the solver output for the placement model.
type PlacementRecommendation struct {
	Schedules   []PlacementSchedule
	Objective   float64
	SimSiteTime float64
	StageTime   float64
	SolveTime   time.Duration
	// Stats instruments the branch-and-bound search (see milp.Stats).
	Stats milp.Stats
}

// Schedule returns the placement schedule for the named analysis, or nil.
func (r *PlacementRecommendation) Schedule(name string) *PlacementSchedule {
	for i := range r.Schedules {
		if r.Schedules[i].Name == name {
			return &r.Schedules[i]
		}
	}
	return nil
}

// placementMode extends mode with a site choice and site-split costs.
type placementMode struct {
	mode
	site     Site
	simTime  float64
	stage    float64
	stageMem int64
}

// SolvePlacement chooses, for every analysis, a site, a frequency, and an
// output stride, maximizing the same objective as Solve. In-situ modes pay
// their full cost against the simulation-site threshold and their peak
// memory against the simulation-site ceiling; co-analysis modes pay only
// the per-analysis transfer time at the simulation site, moving compute
// time and memory to the staging resource.
func SolvePlacement(specs []PlacementSpec, res PlacementResources, opts SolveOptions) (*PlacementRecommendation, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	norm := make([]PlacementSpec, len(specs))
	for i, a := range specs {
		if err := a.AnalysisSpec.Validate(); err != nil {
			return nil, err
		}
		norm[i] = a
		norm[i].AnalysisSpec = a.AnalysisSpec.withDefaults()
		if norm[i].StageMem == 0 {
			norm[i].StageMem = norm[i].FM + norm[i].CM
		}
	}

	prob := milp.NewProblem(&lp.Problem{})
	type varRef struct {
		analysis int
		m        placementMode
	}
	var refs []varRef
	var simTimeIdx, memIdx, stageTimeIdx, stageMemIdx []int
	var simTimeCoef, memCoef, stageTimeCoef, stageMemCoef []float64
	perAnalysis := make([][]int, len(norm))

	for i, a := range norm {
		for _, m := range enumerateModes(a.AnalysisSpec, res.Resources, opts.MaxCount) {
			// In-situ variant: identical to Solve.
			obj := 1 + a.Weight*float64(m.count)
			j := prob.AddBinVar(obj, fmt.Sprintf("x[%s,insitu,n=%d,k=%d]", a.Name, m.count, m.k))
			refs = append(refs, varRef{i, placementMode{mode: m, site: InSitu, simTime: m.cost}})
			perAnalysis[i] = append(perAnalysis[i], j)
			simTimeIdx = append(simTimeIdx, j)
			simTimeCoef = append(simTimeCoef, m.cost)
			memIdx = append(memIdx, j)
			memCoef = append(memCoef, float64(m.peakMem))
		}
		// Co-analysis variants: the simulation site pays ft (coupling
		// setup), it per step, and the transfer per analysis step; compute
		// and output run on the staging side.
		transfer := float64(a.TransferBytes) / res.NetBandwidth
		bound := res.Steps / a.MinInterval
		if opts.MaxCount > 0 && bound > opts.MaxCount {
			bound = opts.MaxCount
		}
		for count := 1; count <= bound; count++ {
			simTime := a.FT + a.IT*float64(res.Steps) + transfer*float64(count)
			stage := (a.CT + a.outputTime(res.Bandwidth)) * float64(count)
			if res.TimeThreshold > 0 && simTime > res.TimeThreshold {
				continue
			}
			if res.StageTimeTotal > 0 && stage > res.StageTimeTotal {
				continue
			}
			if res.StageMemTotal > 0 && a.StageMem > res.StageMemTotal {
				continue
			}
			m := placementMode{
				mode:     mode{count: count, k: 1, outputs: count},
				site:     CoAnalysis,
				simTime:  simTime,
				stage:    stage,
				stageMem: a.StageMem,
			}
			obj := 1 + a.Weight*float64(count)
			j := prob.AddBinVar(obj, fmt.Sprintf("x[%s,co,n=%d]", a.Name, count))
			refs = append(refs, varRef{i, m})
			perAnalysis[i] = append(perAnalysis[i], j)
			simTimeIdx = append(simTimeIdx, j)
			simTimeCoef = append(simTimeCoef, simTime)
			stageTimeIdx = append(stageTimeIdx, j)
			stageTimeCoef = append(stageTimeCoef, stage)
			stageMemIdx = append(stageMemIdx, j)
			stageMemCoef = append(stageMemCoef, float64(a.StageMem))
		}
	}

	for i, vars := range perAnalysis {
		if len(vars) == 0 {
			continue
		}
		ones := make([]float64, len(vars))
		for k := range ones {
			ones[k] = 1
		}
		prob.LP.AddConstraint(vars, ones, lp.LE, 1, fmt.Sprintf("one-mode[%s]", norm[i].Name))
	}
	if res.TimeThreshold > 0 && len(simTimeIdx) > 0 {
		prob.LP.AddConstraint(simTimeIdx, simTimeCoef, lp.LE, res.TimeThreshold, "sim-time")
	}
	if res.MemThreshold > 0 && len(memIdx) > 0 {
		prob.LP.AddConstraint(memIdx, memCoef, lp.LE, float64(res.MemThreshold), "sim-mem")
	}
	if res.StageTimeTotal > 0 && len(stageTimeIdx) > 0 {
		prob.LP.AddConstraint(stageTimeIdx, stageTimeCoef, lp.LE, res.StageTimeTotal, "stage-time")
	}
	if res.StageMemTotal > 0 && len(stageMemIdx) > 0 {
		prob.LP.AddConstraint(stageMemIdx, stageMemCoef, lp.LE, float64(res.StageMemTotal), "stage-mem")
	}

	start := time.Now()
	sol, err := milp.Solve(prob, opts.milpOptions())
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	if sol.Status != milp.Optimal && !(sol.Status == milp.NodeLimit && sol.HasX) {
		return nil, fmt.Errorf("core: placement solve failed: %v", sol.Status)
	}

	rec := &PlacementRecommendation{SolveTime: elapsed, Stats: sol.Stats}
	chosen := make(map[int]placementMode)
	for v, ref := range refs {
		if sol.HasX && sol.X[v] > 0.5 {
			chosen[ref.analysis] = ref.m
		}
	}
	for i, a := range norm {
		m, ok := chosen[i]
		if !ok {
			rec.Schedules = append(rec.Schedules, PlacementSchedule{
				AnalysisSchedule: AnalysisSchedule{Name: a.Name},
				Site:             InSitu,
			})
			continue
		}
		base := buildSchedule(a.AnalysisSpec, res.Resources, m.count, m.k)
		ps := PlacementSchedule{
			AnalysisSchedule: base,
			Site:             m.site,
			SimSiteTime:      m.simTime,
			StageTime:        m.stage,
		}
		if m.site == CoAnalysis {
			ps.PredictedTime = m.simTime + m.stage
		}
		rec.Schedules = append(rec.Schedules, ps)
		rec.Objective += 1 + a.Weight*float64(m.count)
		rec.SimSiteTime += m.simTime
		rec.StageTime += m.stage
	}
	if res.TimeThreshold > 0 && rec.SimSiteTime > res.TimeThreshold*(1+1e-9) {
		return nil, fmt.Errorf("core: placement solution exceeds simulation-site threshold: %g > %g",
			rec.SimSiteTime, res.TimeThreshold)
	}
	return rec, nil
}
