package trace

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trajectory reader: it must reject
// or read them cleanly, never panic, and never return more frames than the
// payload can hold.
func FuzzReader(f *testing.F) {
	// Seed with a valid two-frame file.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.traj")
	w, err := NewWriter(path, 2, 3)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.WriteFrame(int64(i), make([]float32, 6)); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("ISTRAJ1\n"))
	f.Add([]byte{})
	f.Add(seed[:20])

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "f.traj")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := OpenReader(p)
		if err != nil {
			return // rejected cleanly
		}
		defer r.Close()
		if r.NumAtoms() <= 0 || r.Fields() <= 0 {
			t.Fatalf("accepted corrupt header: %d/%d", r.NumAtoms(), r.Fields())
		}
		frames := 0
		for {
			_, _, err := r.ReadFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // truncated frame reported cleanly
			}
			frames++
			if frames > len(data) {
				t.Fatal("more frames than bytes")
			}
		}
	})
}
