package trace

import (
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.traj")
	w, err := NewWriter(path, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	frames := [][]float32{}
	for f := 0; f < 4; f++ {
		data := make([]float32, 15)
		for i := range data {
			data[i] = rng.Float32()
		}
		frames = append(frames, data)
		if err := w.WriteFrame(int64(f*100), data); err != nil {
			t.Fatal(err)
		}
	}
	if w.Frames() != 4 {
		t.Fatalf("frames = %d", w.Frames())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumAtoms() != 5 || r.Fields() != 3 {
		t.Fatalf("header = %d/%d", r.NumAtoms(), r.Fields())
	}
	for f := 0; f < 4; f++ {
		step, data, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if step != int64(f*100) {
			t.Fatalf("step = %d, want %d", step, f*100)
		}
		for i := range data {
			if data[i] != frames[f][i] {
				t.Fatalf("frame %d value %d = %g, want %g", f, i, data[i], frames[f][i])
			}
		}
	}
	if _, _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(filepath.Join(t.TempDir(), "x"), 0, 3); err == nil {
		t.Fatal("expected geometry error")
	}
	path := filepath.Join(t.TempDir(), "t.traj")
	w, err := NewWriter(path, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(0, make([]float32, 3)); err == nil {
		t.Fatal("expected frame-size error")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := w.WriteFrame(0, make([]float32, 4)); err == nil {
		t.Fatal("write after close must fail")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(path, []byte("not a trajectory at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(path); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := OpenReader(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected open error")
	}
}

func TestTruncatedFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.traj")
	w, err := NewWriter(path, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(1, make([]float32, 12)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop off the last 4 bytes.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.ReadFrame(); err == nil || err == io.EOF {
		t.Fatalf("expected truncation error, got %v", err)
	}
}

func TestBytesPerFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.traj")
	w, err := NewWriter(path, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.BytesPerFrame(); got != 8+4*10*6 {
		t.Fatalf("bytes per frame = %d", got)
	}
}

func TestOnDiskSizeMatchesModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.traj")
	natoms, fields, frames := 100, 6, 7
	w, err := NewWriter(path, natoms, fields)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < frames; f++ {
		if err := w.WriteFrame(int64(f), make([]float32, natoms*fields)); err != nil {
			t.Fatal(err)
		}
	}
	bpf := w.BytesPerFrame()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(16) + bpf*int64(frames) // 8 magic + 8 header
	if fi.Size() != want {
		t.Fatalf("file size = %d, want %d", fi.Size(), want)
	}
}

func TestSkipFramesAndCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.traj")
	w, err := NewWriter(path, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 5; f++ {
		data := make([]float32, 6)
		data[0] = float32(f)
		if err := w.WriteFrame(int64(f), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	n, err := CountFrames(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("frames = %d, want 5", n)
	}

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.SkipFrames(3); err != nil {
		t.Fatal(err)
	}
	step, data, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if step != 3 || data[0] != 3 {
		t.Fatalf("after skip: step %d data %v", step, data[:1])
	}
	if err := r.SkipFrames(5); err == nil {
		t.Fatal("expected EOF-ish error skipping past the end")
	}
	if _, err := CountFrames(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected open error")
	}
}
