// Package trace implements a binary trajectory file format for simulation
// output, the artifact the post-processing workflow reads back. LAMMPS-style
// dumps store per-atom coordinates and velocities per frame; the Table-4
// experiment writes a trajectory during the simulation and then measures the
// read-and-analyze cost of the post-processing path against the in-situ
// path.
//
// Format (little endian):
//
//	magic   [8]byte  "ISTRAJ1\n"
//	natoms  uint32
//	fields  uint32   values per atom per frame
//	frames: step uint64, natoms*fields float32
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

var magic = [8]byte{'I', 'S', 'T', 'R', 'A', 'J', '1', '\n'}

// Writer streams trajectory frames to a file.
type Writer struct {
	f      *os.File
	w      *bufio.Writer
	natoms int
	fields int
	frames int
	closed bool
}

// NewWriter creates a trajectory file for natoms atoms with `fields` values
// per atom per frame (e.g. 6 for xyz + velocities).
func NewWriter(path string, natoms, fields int) (*Writer, error) {
	if natoms <= 0 || fields <= 0 {
		return nil, fmt.Errorf("trace: invalid geometry natoms=%d fields=%d", natoms, fields)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, w: bufio.NewWriterSize(f, 1<<20), natoms: natoms, fields: fields}
	if _, err := w.w.Write(magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(natoms))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(fields))
	if _, err := w.w.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// WriteFrame appends one frame. len(data) must equal natoms*fields.
func (w *Writer) WriteFrame(step int64, data []float32) error {
	if w.closed {
		return fmt.Errorf("trace: write to closed writer")
	}
	if len(data) != w.natoms*w.fields {
		return fmt.Errorf("trace: frame has %d values, want %d", len(data), w.natoms*w.fields)
	}
	var stepBuf [8]byte
	binary.LittleEndian.PutUint64(stepBuf[:], uint64(step))
	if _, err := w.w.Write(stepBuf[:]); err != nil {
		return err
	}
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], floatBits(v))
	}
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	w.frames++
	return nil
}

// Frames returns the number of frames written so far.
func (w *Writer) Frames() int { return w.frames }

// BytesPerFrame returns the on-disk size of one frame.
func (w *Writer) BytesPerFrame() int64 { return 8 + 4*int64(w.natoms)*int64(w.fields) }

// Close flushes and closes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader streams trajectory frames from a file.
type Reader struct {
	f      *os.File
	r      *bufio.Reader
	natoms int
	fields int
}

// OpenReader opens a trajectory file and parses its header.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f, r: bufio.NewReaderSize(f, 1<<20)}
	var got [8]byte
	if _, err := io.ReadFull(r.r, got[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if got != magic {
		f.Close()
		return nil, fmt.Errorf("trace: %s is not a trajectory file", path)
	}
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	r.natoms = int(binary.LittleEndian.Uint32(hdr[0:]))
	r.fields = int(binary.LittleEndian.Uint32(hdr[4:]))
	if r.natoms <= 0 || r.fields <= 0 {
		f.Close()
		return nil, fmt.Errorf("trace: corrupt header natoms=%d fields=%d", r.natoms, r.fields)
	}
	return r, nil
}

// NumAtoms returns the per-frame atom count.
func (r *Reader) NumAtoms() int { return r.natoms }

// Fields returns the number of values per atom per frame.
func (r *Reader) Fields() int { return r.fields }

// ReadFrame returns the next frame, or io.EOF after the last one.
func (r *Reader) ReadFrame() (step int64, data []float32, err error) {
	var stepBuf [8]byte
	if _, err := io.ReadFull(r.r, stepBuf[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("trace: reading frame step: %w", err)
	}
	step = int64(binary.LittleEndian.Uint64(stepBuf[:]))
	n := r.natoms * r.fields
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return 0, nil, fmt.Errorf("trace: truncated frame at step %d: %w", step, err)
	}
	data = make([]float32, n)
	for i := range data {
		data[i] = bitsFloat(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return step, data, nil
}

// SkipFrames discards the next n frames without decoding them, which lets
// post-processing tools seek to a region of interest cheaply.
func (r *Reader) SkipFrames(n int) error {
	frame := 8 + 4*int64(r.natoms)*int64(r.fields)
	for i := 0; i < n; i++ {
		if _, err := io.CopyN(io.Discard, r.r, frame); err != nil {
			return fmt.Errorf("trace: skipping frame %d of %d: %w", i+1, n, err)
		}
	}
	return nil
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// CountFrames returns the number of complete frames in a trajectory file
// without reading frame payloads into memory.
func CountFrames(path string) (int, error) {
	r, err := OpenReader(path)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	fi, err := r.f.Stat()
	if err != nil {
		return 0, err
	}
	const header = int64(16) // magic + natoms + fields
	frame := 8 + 4*int64(r.natoms)*int64(r.fields)
	if fi.Size() < header {
		return 0, fmt.Errorf("trace: %s shorter than its header", path)
	}
	return int((fi.Size() - header) / frame), nil
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func bitsFloat(b uint32) float32 { return math.Float32frombits(b) }
