// Package moldable chooses the partition size for a moldable job (§5.3.3):
// schedulers may run the same strong-scaling problem on any of several rank
// counts, and the right choice depends on what it buys — faster simulation,
// but a smaller in-situ analysis budget when the threshold is a percentage
// of the simulation time. Advise solves the in-situ scheduling MILP at every
// candidate size and ranks the candidates by the requested objective.
package moldable

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"insitu/internal/core"
	"insitu/internal/machine"
)

// Candidate is one admissible partition size with its measured or predicted
// simulation performance and analysis cost profiles.
type Candidate struct {
	Ranks         int
	SimSecPerStep float64
	Specs         []core.AnalysisSpec
}

// Objective selects how candidates are ranked.
type Objective int

// Ranking objectives.
const (
	// MaxScience maximizes the scheduling objective |A| + Σ w|C|; ties go
	// to the fewest node-hours.
	MaxScience Objective = iota
	// MaxSciencePerNodeHour maximizes objective per consumed node-hour, the
	// backfill-utilization view of §5.3.3.
	MaxSciencePerNodeHour
	// MinRuntime minimizes end-to-end runtime among candidates whose
	// schedule keeps every analysis enabled; ties go to fewer node-hours.
	MinRuntime
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MaxScience:
		return "max-science"
	case MaxSciencePerNodeHour:
		return "max-science-per-node-hour"
	case MinRuntime:
		return "min-runtime"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Row is the evaluation of one candidate.
type Row struct {
	Ranks     int
	Nodes     int
	Threshold float64
	Rec       *core.Recommendation
	// RuntimeSec is the modeled end-to-end time: simulation plus in-situ
	// analyses.
	RuntimeSec float64
	NodeHours  float64
	Science    float64
}

// Advice is the ranked outcome.
type Advice struct {
	Objective Objective
	Best      Row
	Rows      []Row // all candidates, best first
}

// Config parameterizes the advisor.
type Config struct {
	Steps        int
	ThresholdPct float64 // in-situ budget as % of simulation time
	MemThreshold int64
	Solve        core.SolveOptions
}

// Advise evaluates every candidate and returns them ranked under the
// objective.
func Advise(m *machine.Machine, cands []Candidate, cfg Config, obj Objective) (*Advice, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("moldable: no candidates")
	}
	if cfg.Steps <= 0 || cfg.ThresholdPct <= 0 {
		return nil, fmt.Errorf("moldable: need positive steps and threshold percentage")
	}
	var rows []Row
	for _, c := range cands {
		part, err := m.PartitionForRanks(c.Ranks)
		if err != nil {
			return nil, fmt.Errorf("moldable: ranks=%d: %w", c.Ranks, err)
		}
		res := core.Resources{
			Steps:         cfg.Steps,
			TimeThreshold: core.PercentThreshold(c.SimSecPerStep, cfg.Steps, cfg.ThresholdPct),
			MemThreshold:  cfg.MemThreshold,
		}
		rec, err := core.Solve(c.Specs, res, cfg.Solve)
		if err != nil {
			return nil, fmt.Errorf("moldable: ranks=%d: %w", c.Ranks, err)
		}
		runtime := c.SimSecPerStep*float64(cfg.Steps) + rec.TotalTime
		rows = append(rows, Row{
			Ranks:      c.Ranks,
			Nodes:      part.Nodes,
			Threshold:  res.TimeThreshold,
			Rec:        rec,
			RuntimeSec: runtime,
			NodeHours:  float64(part.Nodes) * runtime / 3600,
			Science:    rec.Objective,
		})
	}

	less := func(a, b Row) bool {
		switch obj {
		case MaxScience:
			if a.Science != b.Science {
				return a.Science > b.Science
			}
			return a.NodeHours < b.NodeHours
		case MaxSciencePerNodeHour:
			ra := a.Science / math.Max(a.NodeHours, 1e-12)
			rb := b.Science / math.Max(b.NodeHours, 1e-12)
			if ra != rb {
				return ra > rb
			}
			return a.RuntimeSec < b.RuntimeSec
		default: // MinRuntime
			ea, eb := a.Rec.EnabledCount(), b.Rec.EnabledCount()
			if ea != eb {
				return ea > eb // keep all analyses alive first
			}
			if a.RuntimeSec != b.RuntimeSec {
				return a.RuntimeSec < b.RuntimeSec
			}
			return a.NodeHours < b.NodeHours
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
	return &Advice{Objective: obj, Best: rows[0], Rows: rows}, nil
}

// String renders the ranked table.
func (a *Advice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "moldable advice (%s):\n", a.Objective)
	fmt.Fprintf(&b, "%-8s %-7s %-12s %-12s %-11s %-9s\n",
		"ranks", "nodes", "runtime(s)", "node-hours", "science", "sci/nh")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-8d %-7d %-12.1f %-12.1f %-11.1f %-9.3f\n",
			r.Ranks, r.Nodes, r.RuntimeSec, r.NodeHours, r.Science,
			r.Science/math.Max(r.NodeHours, 1e-12))
	}
	return b.String()
}
