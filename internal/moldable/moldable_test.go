package moldable

import (
	"math"
	"strings"
	"testing"

	"insitu/internal/core"
	"insitu/internal/experiments"
	"insitu/internal/machine"
)

func figure5Candidates() []Candidate {
	var cands []Candidate
	for _, ranks := range []int{2048, 4096, 8192, 16384, 32768} {
		all := experiments.WaterIonsSpecs(ranks)
		cands = append(cands, Candidate{
			Ranks:         ranks,
			SimSecPerStep: experiments.WaterIonsSimSecPerStep(ranks),
			Specs:         []core.AnalysisSpec{all[0], all[1], all[3]},
		})
	}
	return cands
}

func cfg() Config {
	return Config{Steps: 1000, ThresholdPct: 10, MemThreshold: 12 << 30}
}

func TestAdviseMaxScience(t *testing.T) {
	a, err := Advise(machine.Mira(), figure5Candidates(), cfg(), MaxScience)
	if err != nil {
		t.Fatal(err)
	}
	// The largest budget (slowest simulation, 2048 ranks) buys the most
	// analyses: A4 runs 10x there and once at 32768 (Figure 5).
	if a.Best.Ranks != 2048 {
		t.Fatalf("best ranks = %d, want 2048", a.Best.Ranks)
	}
	if len(a.Rows) != 5 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// Rows sorted by science descending.
	for i := 1; i < len(a.Rows); i++ {
		if a.Rows[i].Science > a.Rows[i-1].Science {
			t.Fatalf("rows not sorted at %d", i)
		}
	}
	if !strings.Contains(a.String(), "max-science") {
		t.Fatal("formatting missing objective")
	}
}

func TestAdviseMinRuntime(t *testing.T) {
	a, err := Advise(machine.Mira(), figure5Candidates(), cfg(), MinRuntime)
	if err != nil {
		t.Fatal(err)
	}
	// All candidates keep 3 analyses enabled (A4 runs at least once even at
	// 32768), so the fastest end-to-end wins: 32768 ranks.
	if a.Best.Ranks != 32768 {
		t.Fatalf("best ranks = %d, want 32768", a.Best.Ranks)
	}
	if a.Best.Rec.EnabledCount() != 3 {
		t.Fatalf("enabled = %d", a.Best.Rec.EnabledCount())
	}
}

func TestAdviseSciencePerNodeHour(t *testing.T) {
	a, err := Advise(machine.Mira(), figure5Candidates(), cfg(), MaxSciencePerNodeHour)
	if err != nil {
		t.Fatal(err)
	}
	// The ratio view must rank candidates by science/node-hours.
	best := a.Rows[0]
	for _, r := range a.Rows[1:] {
		rb := best.Science / math.Max(best.NodeHours, 1e-12)
		rr := r.Science / math.Max(r.NodeHours, 1e-12)
		if rr > rb+1e-12 {
			t.Fatalf("row %d has better ratio than best", r.Ranks)
		}
	}
}

func TestAdviseValidation(t *testing.T) {
	if _, err := Advise(machine.Mira(), nil, cfg(), MaxScience); err == nil {
		t.Fatal("expected no-candidates error")
	}
	bad := cfg()
	bad.Steps = 0
	if _, err := Advise(machine.Mira(), figure5Candidates(), bad, MaxScience); err == nil {
		t.Fatal("expected config error")
	}
	// Candidate exceeding the machine must fail.
	huge := []Candidate{{Ranks: 1 << 30, SimSecPerStep: 1, Specs: experiments.WaterIonsSpecs(16384)}}
	if _, err := Advise(machine.Mira(), huge, cfg(), MaxScience); err == nil {
		t.Fatal("expected partition error")
	}
}

func TestObjectiveString(t *testing.T) {
	for o, want := range map[Objective]string{
		MaxScience: "max-science", MaxSciencePerNodeHour: "max-science-per-node-hour",
		MinRuntime: "min-runtime",
	} {
		if o.String() != want {
			t.Fatalf("%d = %q", o, o.String())
		}
	}
	if Objective(9).String() == "" {
		t.Fatal("unknown objective must print")
	}
}
