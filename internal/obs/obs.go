// Package obs is the telemetry layer of the reproduction: a span/event
// tracer that records a coupled run as a timeline, and a metrics registry
// with counters, gauges, and fixed-bucket histograms. The paper's whole
// methodology rests on measured per-region time and memory profiles (IBM
// HPM/HPCT on Mira feeding the MILP of §3.2), and its validation on
// per-step execution timelines (§5); this package makes both observable in
// the reproduction instead of only reporting aggregate totals.
//
// The tracer exports Chrome trace_event JSON (loadable in chrome://tracing
// or https://ui.perfetto.dev) and a plain CSV timeline. The registry
// exports Prometheus text format and a JSON snapshot. Both are dependency
// free, safe for concurrent use (staging workers and goroutine ranks emit
// from multiple goroutines), and deterministic under an injected clock so
// exported artifacts can be byte-compared in tests.
//
// All handle types are nil-safe: calling methods on a nil *Tracer,
// *Counter, *Gauge, or *Histogram is a no-op, so instrumented code paths
// need no "is telemetry enabled" branches.
package obs
