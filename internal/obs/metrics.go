package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimensions to a metric (e.g. {"kernel": "rdf-hydronium"}).
type Labels map[string]string

// labelKey renders labels in the canonical {k="v",...} form with sorted
// keys; the empty form is "".
func labelKey(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, k, ls[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing value. The hot-path Add is a single
// compare-and-swap loop, so per-message accounting in package comm stays
// cheap. A nil *Counter is a valid no-op.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v (negative increments are ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down. A nil *Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Buckets are cumulative
// in exports, Prometheus style. A nil *Histogram is a valid no-op.
type Histogram struct {
	uppers  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v)
	if i < len(h.uppers) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64 = h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefBuckets is a general-purpose latency bucket layout in seconds.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

type series struct {
	labels Labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	name    string
	kind    string
	buckets []float64
	series  map[string]*series // by labelKey
}

// MetricError is the typed rejection a Registry raises (by panicking with
// it) for invalid or conflicting metric registrations: a name outside the
// Prometheus charset, a name re-registered as a different kind, or a
// histogram re-registered with different buckets. Registration mistakes are
// programming errors — silently accepting them would overwrite or fork the
// family — so they fail loudly at the registration site; recover and unwrap
// with errors.As in tests.
type MetricError struct {
	Name   string // the offending metric name
	Reason string // what was wrong with the registration
}

func (e *MetricError) Error() string {
	return fmt.Sprintf("obs: metric %q: %s", e.Name, e.Reason)
}

// ValidMetricName reports whether name fits the Prometheus metric charset
// [a-zA-Z_:][a-zA-Z0-9_:]* (returning a *MetricError when it does not).
// Registry enforces it on first registration of every family.
func ValidMetricName(name string) error {
	if name == "" {
		return &MetricError{Name: name, Reason: "empty metric name"}
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return &MetricError{Name: name, Reason: fmt.Sprintf("invalid character %q at position %d", c, i)}
		}
	}
	return nil
}

// Registry holds named metrics. Handle lookups lock; the returned handles
// are lock-free, so instrumented code should look up once and reuse. A nil
// *Registry hands out nil (no-op) handles.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, kind string, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		if err := ValidMetricName(name); err != nil {
			panic(err)
		}
		if kind == kindHistogram && len(buckets) == 0 {
			buckets = DefBuckets
		}
		f = &family{name: name, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(&MetricError{Name: name, Reason: fmt.Sprintf("registered as %s, requested as %s", f.kind, kind)})
	}
	// Empty buckets on a later call mean "the existing layout" (a handle
	// lookup); an explicit different layout is a conflicting registration.
	if kind == kindHistogram && len(buckets) > 0 && !sameBuckets(f.buckets, buckets) {
		panic(&MetricError{Name: name, Reason: "histogram re-registered with different buckets"})
	}
	return f
}

// sameBuckets reports whether two bucket layouts are identical.
func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (f *family) at(labels Labels) *series {
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		cp := make(Labels, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		s = &series{labels: cp}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{
				uppers: append([]float64(nil), f.buckets...),
				counts: make([]atomic.Int64, len(f.buckets)),
			}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, kindCounter, nil).at(labels).c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, kindGauge, nil).at(labels).g
}

// Histogram returns the histogram for name+labels, creating it on first use
// with the given bucket upper bounds (sorted ascending; +Inf is implicit).
// Buckets are fixed by the first registration of the name.
func (r *Registry) Histogram(name string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, kindHistogram, buckets).at(labels).h
}

// Metric is one exported series in a snapshot.
type Metric struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Labels Labels  `json:"labels,omitempty"`
	Value  float64 `json:"value"` // counter/gauge value; histogram sum
	Count  int64   `json:"count,omitempty"`
	// Buckets holds cumulative counts per upper bound for histograms.
	Buckets []BucketCount `json:"buckets,omitempty"`
	// Quantiles holds estimated p50/p90/p99 for non-empty histograms,
	// linearly interpolated within buckets (see Quantile).
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Quantile estimates the q-th quantile (0 < q <= 1) of a histogram metric by
// linear interpolation within the bucket that holds the target rank, the
// same estimator Prometheus' histogram_quantile uses: the first bucket
// interpolates from zero, and ranks landing in the +Inf bucket clamp to the
// highest finite upper bound. It returns NaN for empty or non-histogram
// metrics.
func (m Metric) Quantile(q float64) float64 {
	return bucketQuantile(m.Buckets, q)
}

func bucketQuantile(buckets []BucketCount, q float64) float64 {
	if len(buckets) == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var prevCum int64
	lower := 0.0
	seenFinite := false
	for _, b := range buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				// Rank falls past every finite bucket: clamp to the
				// highest finite bound.
				if !seenFinite {
					return math.NaN()
				}
				return lower
			}
			in := b.Count - prevCum
			if in == 0 {
				return b.UpperBound
			}
			return lower + (b.UpperBound-lower)*(rank-float64(prevCum))/float64(in)
		}
		prevCum = b.Count
		if !math.IsInf(b.UpperBound, 1) {
			lower = b.UpperBound
			seenFinite = true
		}
	}
	return math.NaN()
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	UpperBound float64 // +Inf for the last bucket
	Count      int64
}

// MarshalJSON renders the bound as a string so +Inf survives JSON encoding.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatValue(b.UpperBound), b.Count)), nil
}

// UnmarshalJSON parses the string-bound form written by MarshalJSON.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else if _, err := fmt.Sscanf(raw.LE, "%g", &b.UpperBound); err != nil {
		return fmt.Errorf("obs: bucket bound %q: %w", raw.LE, err)
	}
	b.Count = raw.Count
	return nil
}

// Snapshot returns all series sorted by (name, labelKey). The ordering is
// deterministic, so serialized snapshots are byte-stable.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Metric
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			m := Metric{Name: f.name, Kind: f.kind, Labels: s.labels}
			switch f.kind {
			case kindCounter:
				m.Value = s.c.Value()
			case kindGauge:
				m.Value = s.g.Value()
			case kindHistogram:
				m.Value = s.h.Sum()
				var cum int64
				for i, ub := range s.h.uppers {
					cum += s.h.counts[i].Load()
					m.Buckets = append(m.Buckets, BucketCount{UpperBound: ub, Count: cum})
				}
				cum += s.h.inf.Load()
				m.Buckets = append(m.Buckets, BucketCount{UpperBound: math.Inf(1), Count: cum})
				m.Count = cum
				if cum > 0 {
					m.Quantiles = map[string]float64{}
					for _, q := range [...]struct {
						name string
						q    float64
					}{{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}} {
						if v := bucketQuantile(m.Buckets, q.q); !math.IsNaN(v) {
							m.Quantiles[q.name] = v
						}
					}
					if len(m.Quantiles) == 0 {
						m.Quantiles = nil
					}
				}
			}
			out = append(out, m)
		}
	}
	return out
}

// formatValue renders a float the way Prometheus expects.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus emits the registry in Prometheus text exposition format.
// Output is deterministic: families sorted by name, series by label key.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range r.Snapshot() {
		// One TYPE header per family, even when it has many label sets.
		if m.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		lk := labelKey(m.Labels)
		switch m.Kind {
		case kindHistogram:
			for _, b := range m.Buckets {
				ls := histLabelKey(m.Labels, b.UpperBound)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, ls, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, lk, formatValue(m.Value)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, lk, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, lk, formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// histLabelKey renders labels plus the le bucket bound.
func histLabelKey(ls Labels, ub float64) string {
	withLE := make(Labels, len(ls)+1)
	for k, v := range ls {
		withLE[k] = v
	}
	withLE["le"] = formatValue(ub)
	return labelKey(withLE)
}

// WriteJSON emits the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Metric{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
