package obs

import (
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves r in Prometheus text exposition format. A nil
// registry serves an empty exposition, so wiring is unconditional.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// MetricsJSONHandler serves r's snapshot (buckets, quantiles included) as
// indented JSON.
func MetricsJSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// NewServeMux builds the observatory endpoint set on one mux:
//
//	/metrics       Prometheus text exposition of reg
//	/metrics.json  JSON snapshot of reg (quantiles included)
//	/debug/pprof/  the standard runtime profiles (heap, goroutine, profile, ...)
//
// The pprof routes mirror net/http/pprof's DefaultServeMux registrations but
// on an explicit mux, so callers never have to expose DefaultServeMux.
func NewServeMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/metrics.json", MetricsJSONHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
