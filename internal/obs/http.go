package obs

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsHandler serves r in Prometheus text exposition format. A nil
// registry serves an empty exposition, so wiring is unconditional.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// MetricsJSONHandler serves r's snapshot (buckets, quantiles included) as
// indented JSON.
func MetricsJSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// HealthHandler answers liveness probes: 200 "ok\n" unconditionally. A
// process that can still serve this handler is alive; readiness (is it
// willing to take work?) is a separate, service-specific route.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
}

// NewServeMux builds the observatory endpoint set on one mux:
//
//	/healthz       liveness probe (200 "ok")
//	/metrics       Prometheus text exposition of reg
//	/metrics.json  JSON snapshot of reg (quantiles included)
//	/debug/pprof/  the standard runtime profiles (heap, goroutine, profile, ...)
//
// The pprof routes mirror net/http/pprof's DefaultServeMux registrations but
// on an explicit mux, so callers never have to expose DefaultServeMux. Every
// daemon in the repo (benchobs serve, runmon serve, schedd) builds on this
// mux, so they all report liveness uniformly.
func NewServeMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/healthz", HealthHandler())
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/metrics.json", MetricsJSONHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeUntil serves h on ln until ctx is canceled, then shuts the server
// down gracefully (in-flight requests get up to five seconds to finish).
// It returns nil on a clean shutdown; http.ErrServerClosed is never
// surfaced. Both benchobs serve and runmon serve sit on this so SIGINT and
// SIGTERM always flush cleanly instead of killing the process mid-request.
func ServeUntil(ctx context.Context, ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// ServeLoop is ServeUntil plus a managed background task: the shape every
// daemon in the repo has (benchobs serve loops a workload, runmon serve
// tails a ledger, schedd keeps none). It serves h on ln until ctx is
// canceled, runs bg (when non-nil) on a context that is canceled as soon as
// serving stops, and returns only after both have drained. The first error
// wins: a serve failure is reported over a background failure, and a clean
// shutdown returns whatever the background task returned (nil included).
func ServeLoop(ctx context.Context, ln net.Listener, h http.Handler, bg func(context.Context) error) error {
	bgCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan error, 1)
	if bg != nil {
		go func() { done <- bg(bgCtx) }()
	}
	err := ServeUntil(ctx, ln, h)
	cancel()
	var bgErr error
	if bg != nil {
		bgErr = <-done
	}
	if err != nil {
		return err
	}
	return bgErr
}
