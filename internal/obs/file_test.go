package obs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failWriter fails every write; the file helpers and exporters must surface
// the error instead of swallowing it.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink full") }

func TestWriteTraceFileRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.Begin("step", "sim").End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"step"`) {
		t.Fatalf("trace file missing span: %s", data)
	}
}

func TestWriteTraceFileNilTracer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := WriteTraceFile(path, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != `{"traceEvents":[]}` {
		t.Fatalf("nil tracer file = %q", data)
	}
}

func TestWriteTraceFileUnwritablePath(t *testing.T) {
	err := WriteTraceFile(filepath.Join(t.TempDir(), "no", "such", "dir", "t.json"), NewTracer())
	if err == nil {
		t.Fatal("unwritable trace path accepted")
	}
	// A directory as the target also fails at create time.
	if err := WriteTraceFile(t.TempDir(), NewTracer()); err == nil {
		t.Fatal("directory as trace path accepted")
	}
}

func TestWriteMetricsFileFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("n", nil).Add(2)
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "m.json")
	if err := WriteMetricsFile(jsonPath, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind": "counter"`) {
		t.Fatalf("json metrics file = %s", data)
	}

	promPath := filepath.Join(dir, "m.txt")
	if err := WriteMetricsFile(promPath, r); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# TYPE n counter") {
		t.Fatalf("prometheus metrics file = %s", data)
	}
}

func TestWriteMetricsFileNilRegistry(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "nil.json")
	if err := WriteMetricsFile(jsonPath, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "[]" {
		t.Fatalf("nil registry json = %q", data)
	}
	promPath := filepath.Join(dir, "nil.txt")
	if err := WriteMetricsFile(promPath, nil); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("nil registry prometheus = %q", data)
	}
}

func TestWriteMetricsFileUnwritablePath(t *testing.T) {
	if err := WriteMetricsFile(filepath.Join(t.TempDir(), "no", "dir", "m.json"), NewRegistry()); err == nil {
		t.Fatal("unwritable metrics path accepted")
	}
	if err := WriteMetricsFile(t.TempDir(), NewRegistry()); err == nil {
		t.Fatal("directory as metrics path accepted")
	}
}

// TestExportersSurfaceWriteFailures exercises the write-failure path of
// every exporter the file helpers route through.
func TestExportersSurfaceWriteFailures(t *testing.T) {
	tr := NewTracer()
	tr.Begin("a", "b").End()
	if err := tr.WriteChromeTrace(failWriter{}); err == nil {
		t.Fatal("WriteChromeTrace ignored write failure")
	}
	if err := tr.WriteCSV(failWriter{}); err == nil {
		t.Fatal("WriteCSV ignored write failure")
	}
	var nilTr *Tracer
	if err := nilTr.WriteChromeTrace(failWriter{}); err == nil {
		t.Fatal("nil-tracer WriteChromeTrace ignored write failure")
	}

	r := NewRegistry()
	r.Counter("n", nil).Inc()
	r.Histogram("h", nil, nil).Observe(1)
	if err := r.WritePrometheus(failWriter{}); err == nil {
		t.Fatal("WritePrometheus ignored write failure")
	}
	if err := r.WriteJSON(failWriter{}); err == nil {
		t.Fatal("WriteJSON ignored write failure")
	}
	var nilReg *Registry
	if err := nilReg.WriteJSON(failWriter{}); err == nil {
		t.Fatal("nil-registry WriteJSON ignored write failure")
	}
}
