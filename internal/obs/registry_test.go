package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeRunLedger writes one ledger file with a run envelope, a solve event,
// and a full flight stream named solveName.
func writeRunLedger(t *testing.T, path, app, solveName string, pivots int) {
	t.Helper()
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(LedgerEvent{Type: LedgerRunStart, Name: app})
	l.Append(LedgerEvent{Type: LedgerStep, Step: 3})
	l.Append(LedgerEvent{Type: LedgerAlert, Name: "drift"})
	l.Append(LedgerEvent{Type: LedgerSolve, Name: solveName, Dur: 1500,
		Args: map[string]float64{"nodes": 3, "pivots": float64(pivots), "objective": 15}})
	for _, p := range progStream() {
		p.Pivots += pivots - 25 // shift the cumulative pivot curve per run
		l.Append(p.Event(solveName))
	}
	l.Append(LedgerEvent{Type: LedgerRunEnd})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexLedger(t *testing.T) {
	var events []LedgerEvent
	events = append(events, LedgerEvent{Type: LedgerRunStart, Name: "lulesh"})
	events = append(events, LedgerEvent{Type: LedgerStep, Step: 7})
	events = append(events, LedgerEvent{Type: LedgerReplan, Name: "replan"})
	events = append(events, LedgerEvent{Type: LedgerSolve, Name: "plan", Dur: 900,
		Args: map[string]float64{"nodes": 3, "pivots": 25, "objective": 15}})
	for _, p := range progStream() {
		events = append(events, p.Event("plan"))
	}
	events = append(events, LedgerEvent{Type: LedgerRunEnd})

	rec := IndexLedger("runs/a.jsonl", events)
	if rec.App != "lulesh" || rec.Steps != 7 || !rec.Ended || rec.Replans != 1 {
		t.Fatalf("record = %+v", rec)
	}
	if len(rec.Solves) != 1 || rec.Solves[0].Pivots != 25 || rec.Solves[0].Objective != 15 {
		t.Fatalf("solves = %+v", rec.Solves)
	}
	if len(rec.Flights) != 1 {
		t.Fatalf("flights = %+v", rec.Flights)
	}
	f := rec.Flights[0]
	if f.Name != "plan" || f.Events != 5 || f.Status != "optimal" || !f.HasObj || f.Objective != 15 {
		t.Fatalf("flight = %+v", f)
	}
	if !f.HasGap || f.FinalGap != 0 || f.InitGap != 10 {
		t.Fatalf("flight gaps = %+v", f)
	}
	// Gap first reaches <=10% of the initial gap (1.0) at the closing wave.
	if f.GapCloseNode != 3 {
		t.Fatalf("GapCloseNode = %d, want 3", f.GapCloseNode)
	}
}

func TestScanRunsFilterHistory(t *testing.T) {
	dir := t.TempDir()
	writeRunLedger(t, filepath.Join(dir, "run1.jsonl"), "lulesh", "plan", 25)
	writeRunLedger(t, filepath.Join(dir, "run2.jsonl"), "comd", "plan", 40)
	if err := os.WriteFile(filepath.Join(dir, "broken.jsonl"), []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg, err := ScanRuns(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Runs) != 2 {
		t.Fatalf("indexed %d runs, want 2 (warnings %v)", len(reg.Runs), reg.Warnings)
	}
	if len(reg.Warnings) != 1 || !strings.Contains(reg.Warnings[0], "broken.jsonl") {
		t.Fatalf("warnings = %v", reg.Warnings)
	}
	// Sorted by file name: run1 (lulesh) then run2 (comd).
	if reg.Runs[0].App != "lulesh" || reg.Runs[1].App != "comd" {
		t.Fatalf("run order = %s, %s", reg.Runs[0].App, reg.Runs[1].App)
	}

	if got := reg.Filter("comd"); len(got.Runs) != 1 || got.Runs[0].App != "comd" {
		t.Fatalf("Filter(comd) = %+v", got.Runs)
	}
	if got := reg.Filter("plan"); len(got.Runs) != 2 {
		t.Fatalf("Filter(plan) matched %d runs, want 2 (solve-name match)", len(got.Runs))
	}
	if got := reg.Filter("nomatch"); len(got.Runs) != 0 {
		t.Fatalf("Filter(nomatch) matched %d runs", len(got.Runs))
	}
	if got := reg.Filter(""); got != reg {
		t.Fatal("empty filter must return the registry itself")
	}

	hist := reg.History()
	if len(hist) != 1 || hist[0].Name != "plan" {
		t.Fatalf("history = %+v", hist)
	}
	h := hist[0]
	// One solve event + one flight stream per run.
	if h.Runs != 4 || len(h.Pivots) != 4 || len(h.GapCloseNodes) != 2 {
		t.Fatalf("history row = %+v", h)
	}

	var buf bytes.Buffer
	if err := reg.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"warning:", "run ", "solve  plan", "flight plan", "history (1 solve name(s)", "gap90@node=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs    []RunRecord  `json:"runs"`
		History []HistoryRow `json:"history"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 || len(doc.History) != 1 {
		t.Fatalf("JSON doc: %d runs, %d history rows", len(doc.Runs), len(doc.History))
	}
}

func TestScanRunsEmptyDir(t *testing.T) {
	reg, err := ScanRuns(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Runs) != 0 || len(reg.Warnings) != 0 {
		t.Fatalf("registry = %+v", reg)
	}
	var buf bytes.Buffer
	if err := reg.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no run ledgers") {
		t.Fatalf("empty table = %q", buf.String())
	}
}

func TestIntFloatTrend(t *testing.T) {
	if got := intTrend([]int{3, 1, 7, 5}); got != "3→5 (min 1, max 7)" {
		t.Fatalf("intTrend = %q", got)
	}
	if got := intTrend(nil); got != "-" {
		t.Fatalf("intTrend(nil) = %q", got)
	}
	if got := floatTrend([]float64{10, 20}); got != "10→20 (min 10, max 20)" {
		t.Fatalf("floatTrend = %q", got)
	}
	if got := floatTrend(nil); got != "-" {
		t.Fatalf("floatTrend(nil) = %q", got)
	}
}
