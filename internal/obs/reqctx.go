package obs

import "context"

// RequestIDHeader is the HTTP header the schedd daemon (and any client that
// wants its IDs echoed back) uses to propagate a request identity. The
// server generates an ID when the header is absent, so every request has
// one.
const RequestIDHeader = "X-Request-Id"

// reqIDKey is the context key request IDs travel under. An unexported
// struct key cannot collide with keys from other packages.
type reqIDKey struct{}

// WithRequestID returns a context carrying the request identity. The
// service tier stamps it at the HTTP boundary; everything below — campaign,
// core, milp — reads it back with RequestID, so ledger events and solver
// telemetry emitted deep inside a solve can be attributed to the request
// that caused them.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the request identity carried by ctx, or "" when the
// context is nil or carries none.
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
