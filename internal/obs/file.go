package obs

import (
	"os"
	"strings"
)

// WriteTraceFile writes t's timeline as Chrome trace JSON to path
// (chrome://tracing / Perfetto format). A nil tracer writes an empty trace.
func WriteTraceFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteMetricsFile writes r's snapshot to path: JSON when the path ends in
// .json, Prometheus text exposition format otherwise. A nil registry writes
// an empty snapshot.
func WriteMetricsFile(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := r.WritePrometheus
	if strings.HasSuffix(path, ".json") {
		write = r.WriteJSON
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
