package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// progStream builds a small well-formed flight stream: start, two waves with
// a tightening gap, an incumbent bump, and an optimal end.
func progStream() []SolveProgress {
	return []SolveProgress{
		{Seq: 0, Kind: SolveProgStart, Workers: 1, Vars: 6, IntVars: 4, Constraints: 9},
		{Seq: 1, Kind: SolveProgWave, Wave: 1, WaveSize: 1, Workers: 1, Nodes: 1, Open: 2,
			HasInc: true, Incumbent: 10, HasBound: true, Bound: 20, Pivots: 12, Relaxations: 1, ColdSolves: 1, BranchedNodes: 1},
		{Seq: 2, Kind: SolveProgIncumbent, Wave: 1, Workers: 1, Nodes: 2, Open: 1,
			HasInc: true, Incumbent: 14, HasBound: true, Bound: 18, Pivots: 20, Relaxations: 2, WarmSolves: 1, ColdSolves: 1, BranchedNodes: 2},
		{Seq: 3, Kind: SolveProgWave, Wave: 2, WaveSize: 1, Workers: 1, Nodes: 3, Open: 0,
			HasInc: true, Incumbent: 15, HasBound: true, Bound: 15, Pivots: 25, Relaxations: 3, WarmSolves: 2, ColdSolves: 1,
			PrunedBound: 1, IntegralNodes: 1, BranchedNodes: 2},
		{Seq: 4, Kind: SolveProgEnd, Wave: 2, Workers: 1, Nodes: 3,
			HasInc: true, Incumbent: 15, HasBound: true, Bound: 15, Pivots: 25, Relaxations: 3, WarmSolves: 2, ColdSolves: 1,
			PrunedBound: 1, IntegralNodes: 1, BranchedNodes: 2, Status: "optimal"},
	}
}

func TestSolveProgGap(t *testing.T) {
	p := SolveProgress{HasInc: true, Incumbent: 10, HasBound: true, Bound: 14}
	if gap, ok := p.Gap(); !ok || gap != 4 {
		t.Fatalf("gap = %g, %t; want 4, true", gap, ok)
	}
	if _, ok := (SolveProgress{HasInc: true, Incumbent: 1}).Gap(); ok {
		t.Fatal("gap defined without a bound")
	}
	if _, ok := (SolveProgress{HasBound: true, Bound: 1}).Gap(); ok {
		t.Fatal("gap defined without an incumbent")
	}
}

func TestSolveProgLedgerRoundTrip(t *testing.T) {
	for _, p := range progStream() {
		e := p.Event("plan")
		if e.Type != LedgerSolveProg || e.Name != "plan" {
			t.Fatalf("event type/name = %q/%q", e.Type, e.Name)
		}
		if e.Args["solveprog_v"] != SolveProgSchemaVersion {
			t.Fatalf("missing schema stamp in %v", e.Args)
		}
		got, ok := SolveProgFromEvent(e)
		if !ok {
			t.Fatalf("decode failed for kind %s", p.Kind)
		}
		// TUS travels through the args, everything else must round-trip.
		got.TUS = p.TUS
		if got != p {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
		}
	}
}

func TestSolveProgFromEventSkips(t *testing.T) {
	if _, ok := SolveProgFromEvent(LedgerEvent{Type: LedgerSolve}); ok {
		t.Fatal("decoded a non-solveprog event")
	}
	if _, ok := SolveProgFromEvent(LedgerEvent{Type: LedgerSolveProg}); ok {
		t.Fatal("decoded an event missing the version stamp")
	}
	newer := LedgerEvent{Type: LedgerSolveProg, Args: map[string]float64{"solveprog_v": SolveProgSchemaVersion + 1}}
	if _, ok := SolveProgFromEvent(newer); ok {
		t.Fatal("decoded an event from a newer schema")
	}
}

func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(3)
	r.SetName("demo")
	for i := 0; i < 5; i++ {
		r.Record(SolveProgress{Seq: i, Kind: SolveProgWave, Nodes: i})
	}
	if r.Len() != 3 || r.Total() != 5 || r.Dropped() != 2 {
		t.Fatalf("len/total/dropped = %d/%d/%d; want 3/5/2", r.Len(), r.Total(), r.Dropped())
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Seq != 2 || snap[2].Seq != 4 {
		t.Fatalf("snapshot = %+v; want seqs 2..4 oldest-first", snap)
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 || r.Name() != "demo" {
		t.Fatalf("reset kept state: len=%d total=%d dropped=%d name=%q", r.Len(), r.Total(), r.Dropped(), r.Name())
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.Record(SolveProgress{})
	r.SetName("x")
	r.Reset()
	r.AppendLedger(nil, "")
	r.AppendTraceCounters(nil)
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 || r.Name() != "" || r.Snapshot() != nil {
		t.Fatal("nil recorder must be a no-op")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on nil recorder: %v", err)
	}
	if !strings.Contains(buf.String(), `"events": []`) {
		t.Fatalf("nil recorder JSON = %s", buf.String())
	}
}

func TestFlightRecorderAppendLedger(t *testing.T) {
	r := NewFlightRecorder(0)
	r.SetName("plan")
	for _, p := range progStream() {
		r.Record(p)
	}
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	r.AppendLedger(l, "")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := SolveProgFromEvents(events)
	if len(recs) != len(progStream()) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(progStream()))
	}
	if err := CheckSolveProg(recs); err != nil {
		t.Fatalf("round-tripped stream fails invariants: %v", err)
	}
	runs := GroupSolveProgEvents(events)
	if len(runs) != 1 || runs[0].Name != "plan" || len(runs[0].Records) != len(progStream()) {
		t.Fatalf("grouped runs = %+v", runs)
	}
}

func TestFlightRecorderAppendTraceCounters(t *testing.T) {
	r := NewFlightRecorder(0)
	for _, p := range progStream() {
		r.Record(p)
	}
	tr := NewTracer()
	r.AppendTraceCounters(tr)
	counts := map[string]int{}
	for _, e := range tr.Events() {
		if e.Phase != PhaseCounter {
			t.Fatalf("non-counter event %q in flight counters", e.Name)
		}
		counts[e.Name]++
	}
	// 4 records carry incumbent+bound+gap; all 5 carry open_nodes.
	if counts["solve/incumbent"] != 4 || counts["solve/bound"] != 4 ||
		counts["solve/gap"] != 4 || counts["solve/open_nodes"] != 5 {
		t.Fatalf("counter mix = %v", counts)
	}
}

func TestCheckSolveProgViolations(t *testing.T) {
	base := progStream()
	cases := []struct {
		name   string
		mutate func([]SolveProgress) []SolveProgress
		want   string
	}{
		{"empty", func([]SolveProgress) []SolveProgress { return nil }, "empty"},
		{"seq", func(r []SolveProgress) []SolveProgress { r[2].Seq = r[1].Seq; return r }, "seq"},
		{"nodes", func(r []SolveProgress) []SolveProgress { r[3].Nodes = 0; return r }, "nodes"},
		{"incumbent", func(r []SolveProgress) []SolveProgress { r[3].Incumbent = 1; r[4].Incumbent = 1; return r }, "incumbent"},
		{"bound", func(r []SolveProgress) []SolveProgress { r[3].Bound = 99; r[4].Bound = 99; return r }, "bound"},
		{"gap", func(r []SolveProgress) []SolveProgress {
			// Incumbent above the bound: negative gap (rising incumbent and
			// falling bound keep the other monotonicity checks quiet).
			r[3].Incumbent, r[3].Bound = 16, 15
			r[4].Incumbent, r[4].Bound = 16, 15
			return r
		}, "negative gap"},
	}
	for _, tc := range cases {
		recs := tc.mutate(append([]SolveProgress(nil), base...))
		err := CheckSolveProg(recs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: CheckSolveProg = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := CheckSolveProg(base); err != nil {
		t.Fatalf("well-formed stream rejected: %v", err)
	}
}

func TestFinalGap(t *testing.T) {
	gap, status, ok := FinalGap(progStream())
	if !ok || gap != 0 || status != "optimal" {
		t.Fatalf("FinalGap = %g, %q, %t; want 0, optimal, true", gap, status, ok)
	}
	if _, _, ok := FinalGap(progStream()[:4]); ok {
		t.Fatal("FinalGap without an end event must report ok=false")
	}
}

func TestDeterministicAndCanonicalBytes(t *testing.T) {
	recs := progStream()
	det1, det2 := DeterministicBytes(recs), DeterministicBytes(recs)
	if !bytes.Equal(det1, det2) {
		t.Fatal("DeterministicBytes not stable")
	}
	// t_us must not leak into the deterministic projection.
	shifted := append([]SolveProgress(nil), recs...)
	for i := range shifted {
		shifted[i].TUS += 1e6
	}
	if !bytes.Equal(det1, DeterministicBytes(shifted)) {
		t.Fatal("DeterministicBytes depends on t_us")
	}
	// The canonical projection keeps only start shape and end outcome, so a
	// wider run with a different middle must agree.
	wide := []SolveProgress{recs[0], recs[4]}
	wide[0].Workers, wide[1].Workers = 8, 8
	wide[1].Pivots, wide[1].Nodes = 999, 7
	if !bytes.Equal(CanonicalBytes(recs), CanonicalBytes(wide)) {
		t.Fatalf("canonical projections differ:\n%s\n%s", CanonicalBytes(recs), CanonicalBytes(wide))
	}
	if bytes.Equal(det1, DeterministicBytes(wide)) {
		t.Fatal("full streams should differ between widths in this fixture")
	}
}

func TestGroupSolveProgEventsMultipleRuns(t *testing.T) {
	var events []LedgerEvent
	for _, p := range progStream() {
		events = append(events, p.Event("first"))
	}
	second := progStream()
	for _, p := range second {
		events = append(events, p.Event("second"))
	}
	runs := GroupSolveProgEvents(events)
	if len(runs) != 2 || runs[0].Name != "first" || runs[1].Name != "second" {
		t.Fatalf("runs = %+v", runs)
	}
	if len(runs[0].Records) != 5 || len(runs[1].Records) != 5 {
		t.Fatalf("record split = %d/%d", len(runs[0].Records), len(runs[1].Records))
	}
	if GroupSolveProgEvents([]LedgerEvent{{Type: LedgerStep}}) != nil {
		t.Fatal("old ledger must group to nil")
	}
}

func TestWriteGapTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGapTimeline(&buf, "plan", progStream()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"solve progress plan",
		"shape: 6 vars (4 integer), 9 constraints",
		"final: optimal, objective 15, gap 0",
		"2 warm / 1 cold solves",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteGapTimeline(&buf, "", nil); err != nil || buf.Len() != 0 {
		t.Fatalf("empty stream must render nothing: %q, %v", buf.String(), err)
	}
}

func TestSampleRowsKeepsEnds(t *testing.T) {
	rows := make([]SolveProgress, 100)
	for i := range rows {
		rows[i].Nodes = i
	}
	got := sampleRows(rows, maxGapRows)
	if len(got) != maxGapRows || got[0].Nodes != 0 || got[len(got)-1].Nodes != 99 {
		t.Fatalf("sampleRows = %d rows, first %d, last %d", len(got), got[0].Nodes, got[len(got)-1].Nodes)
	}
}

func TestFlightHandlers(t *testing.T) {
	r := NewFlightRecorder(0)
	r.SetName("plan")
	for _, p := range progStream() {
		r.Record(p)
	}
	mux := NewServeMux(nil)
	AddFlightRoutes(mux, r)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/solve.json", nil))
	if rec.Code != 200 {
		t.Fatalf("/solve.json status %d", rec.Code)
	}
	var doc struct {
		Schema int             `json:"solveprog_v"`
		Name   string          `json:"name"`
		Events []SolveProgress `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SolveProgSchemaVersion || doc.Name != "plan" || len(doc.Events) != 5 {
		t.Fatalf("/solve.json doc = %+v", doc)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/solve", nil))
	if rec.Code != 200 {
		t.Fatalf("/solve status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"<svg", "incumbent", "solve progress plan"} {
		if !strings.Contains(body, want) {
			t.Errorf("/solve page missing %q", want)
		}
	}

	// An empty recorder still serves a valid page.
	empty := NewFlightRecorder(0)
	mux2 := NewServeMux(nil)
	AddFlightRoutes(mux2, empty)
	rec = httptest.NewRecorder()
	mux2.ServeHTTP(rec, httptest.NewRequest("GET", "/solve", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "no solveprog events") {
		t.Fatalf("empty /solve page: %d %q", rec.Code, rec.Body.String())
	}
}

func TestFlightWriteJSON(t *testing.T) {
	r := NewFlightRecorder(0)
	r.SetName("plan")
	for _, p := range progStream() {
		r.Record(p)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc flightJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SolveProgSchemaVersion || doc.Name != "plan" || doc.Total != 5 || len(doc.Events) != 5 {
		t.Fatalf("doc = %+v", doc)
	}
}
