package obs

import (
	"context"
	"testing"
)

func TestRequestID(t *testing.T) {
	if got := RequestID(nil); got != "" {
		t.Fatalf("RequestID(nil) = %q", got)
	}
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("RequestID(empty) = %q", got)
	}
	if WithRequestID(ctx, "") != ctx {
		t.Fatal("WithRequestID with an empty id should be a no-op")
	}
	ctx = WithRequestID(ctx, "req-7f")
	if got := RequestID(ctx); got != "req-7f" {
		t.Fatalf("RequestID = %q, want req-7f", got)
	}
	// Inner IDs shadow outer ones, as nested scopes expect.
	inner := WithRequestID(ctx, "req-80")
	if got := RequestID(inner); got != "req-80" {
		t.Fatalf("nested RequestID = %q, want req-80", got)
	}
	if got := RequestID(ctx); got != "req-7f" {
		t.Fatalf("outer ctx mutated: %q", got)
	}
}
