package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed amount per reading, like the perfmodel tests.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	tick time.Duration
}

func newFakeClock(tick time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0), tick: tick}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.tick)
	return c.t
}

func TestTracerSpansDeterministic(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(newFakeClock(time.Millisecond).now)

	outer := tr.Begin("step", "sim").Arg("step", 1)
	inner := tr.Begin("rdf.analyze", "kernel")
	inner.End()
	outer.End()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Sorted by start: outer opened first.
	if evs[0].Name != "step" || evs[1].Name != "rdf.analyze" {
		t.Fatalf("order = %s, %s", evs[0].Name, evs[1].Name)
	}
	// Nesting: the kernel span lies inside the step span.
	if evs[1].Start < evs[0].Start || evs[1].Start+evs[1].Dur > evs[0].Start+evs[0].Dur {
		t.Fatalf("kernel span [%v,+%v] not inside step span [%v,+%v]",
			evs[1].Start, evs[1].Dur, evs[0].Start, evs[0].Dur)
	}
	if evs[0].Args["step"] != 1 {
		t.Fatalf("args = %v", evs[0].Args)
	}
}

// chromeTrace mirrors the trace_event JSON object format for parsing back.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat"`
	Ph   string             `json:"ph"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"` // numeric for events, string for metadata
}

func TestWriteChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(newFakeClock(time.Millisecond).now)
	sp := tr.Begin("step", "sim")
	tr.Instant("incumbent", "solver", map[string]float64{"objective": 42})
	tr.Counter("backlog", 7)
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	// Three timeline events plus the process_name metadata event.
	if len(parsed.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(parsed.TraceEvents))
	}
	byPh := map[string]int{}
	for _, e := range parsed.TraceEvents {
		byPh[e.Ph]++
		if e.Pid != 1 {
			t.Fatalf("pid = %d", e.Pid)
		}
	}
	if byPh["X"] != 1 || byPh["i"] != 1 || byPh["C"] != 1 || byPh["M"] != 1 {
		t.Fatalf("phases = %v", byPh)
	}

	// Byte-stable under the injected clock.
	var buf2 bytes.Buffer
	if err := tr.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("trace export not byte-stable")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(newFakeClock(time.Millisecond).now)
	tr.Begin("a,b", "cat").End()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	if lines[0] != "track,phase,cat,name,start_us,dur_us" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "a;b") {
		t.Fatalf("comma not escaped: %q", lines[1])
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(track int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.BeginOn(track, "work", "test")
				tr.Counter("n", float64(i))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len(); got != 8*200 {
		t.Fatalf("events = %d, want %d", got, 8*200)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON from concurrent trace")
	}
}

// TestChromeTraceMetadataGolden pins the exact metadata prelude: Perfetto
// keys process_name/thread_name off these events, so the golden string is
// the contract.
func TestChromeTraceMetadataGolden(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(newFakeClock(time.Millisecond).now)
	tr.SetProcessName("mdsim")
	tr.SetTrackName(0, "simulation")
	tr.SetTrackName(1, "staging-0")
	tr.Begin("step", "sim").End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"mdsim"}},` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"simulation"}},` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"staging-0"}},` +
		`{"name":"step","cat":"sim","ph":"X","pid":1,"tid":0,"ts":1000.000,"dur":1000.000}` +
		"]}\n"
	if got := buf.String(); got != want {
		t.Fatalf("metadata golden mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestChromeTraceDefaultProcessName checks the unnamed-tracer default.
func TestChromeTraceDefaultProcessName(t *testing.T) {
	tr := NewTracer()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"insitu"}}]}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("default metadata:\n got %s\nwant %s", got, want)
	}
	var nilTr *Tracer
	nilTr.SetProcessName("x") // must not panic
	nilTr.SetTrackName(0, "y")
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", "y")
	sp.Arg("k", 1)
	sp.End()
	tr.Instant("i", "c", nil)
	tr.Counter("c", 1)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil tracer export invalid: %q", buf.String())
	}
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}
