package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The cross-run registry indexes many JSONL run ledgers into one queryable
// history, so solver regressions show up across real runs — not just
// against the committed BENCH_*.json snapshot. benchobs runs is the CLI
// face; ScanRuns + History are the library face.

// SolveSummary is one solve event of a ledger, reduced to the registry's
// query dimensions.
type SolveSummary struct {
	Name      string  `json:"name"`
	Nodes     int     `json:"nodes"`
	Pivots    int     `json:"pivots"`
	Objective float64 `json:"objective"`
	WallUS    float64 `json:"wall_us"`
}

// FlightSummary condenses one solver flight stream (a solveprog run) into
// the registry's gap-closure view.
type FlightSummary struct {
	Name    string `json:"name"`
	Events  int    `json:"events"`
	Workers int    `json:"workers"`
	Status  string `json:"status,omitempty"`
	// Objective and FinalGap come from the end event when present.
	Objective float64 `json:"objective,omitempty"`
	HasObj    bool    `json:"has_obj"`
	InitGap   float64 `json:"init_gap,omitempty"`
	FinalGap  float64 `json:"final_gap,omitempty"`
	HasGap    bool    `json:"has_gap"`
	// GapCloseNode is the explored-node count at which the absolute gap
	// first dropped to <= 10% of the initial gap (0 when it never did or no
	// gap was ever defined) — the registry's gap-closure trajectory signal.
	GapCloseNode int     `json:"gap_close_node,omitempty"`
	Nodes        int     `json:"nodes"`
	Pivots       int     `json:"pivots"`
	WarmSolves   int     `json:"warm"`
	ColdSolves   int     `json:"cold"`
	WallUS       float64 `json:"wall_us"`
}

// RunRecord is one ledger file's index entry.
type RunRecord struct {
	Path    string          `json:"path"`
	App     string          `json:"app,omitempty"`
	Steps   int             `json:"steps"`
	Events  int             `json:"events"`
	Ended   bool            `json:"ended"`
	Alerts  int             `json:"alerts,omitempty"`
	Replans int             `json:"replans,omitempty"`
	Solves  []SolveSummary  `json:"solves,omitempty"`
	Flights []FlightSummary `json:"flights,omitempty"`
}

// RunRegistry is the indexed history of many run ledgers.
type RunRegistry struct {
	Runs []RunRecord `json:"runs"`
	// Warnings lists files that were skipped (unreadable or malformed);
	// indexing is lenient so one corrupt ledger cannot hide the rest.
	Warnings []string `json:"warnings,omitempty"`
}

// summarizeFlight reduces one stream to its registry row.
func summarizeFlight(run SolveProgRun) FlightSummary {
	fs := FlightSummary{Name: run.Name, Events: len(run.Records)}
	initSet := false
	for _, p := range run.Records {
		fs.Workers = p.Workers
		fs.Nodes = p.Nodes
		fs.Pivots = p.Pivots
		fs.WarmSolves = p.WarmSolves
		fs.ColdSolves = p.ColdSolves
		fs.WallUS = p.TUS
		if gap, ok := p.Gap(); ok {
			if !initSet {
				fs.InitGap, initSet = gap, true
			}
			if fs.GapCloseNode == 0 && gap <= fs.InitGap*0.1+1e-9 {
				fs.GapCloseNode = p.Nodes
			}
		}
		if p.Kind == SolveProgEnd {
			fs.Status = p.Status
			if p.HasInc {
				fs.Objective, fs.HasObj = p.Incumbent, true
			}
			if gap, ok := p.Gap(); ok {
				fs.FinalGap, fs.HasGap = gap, true
			}
		}
	}
	return fs
}

// IndexLedger reduces one parsed ledger to its registry record.
func IndexLedger(path string, events []LedgerEvent) RunRecord {
	rec := RunRecord{Path: path, Events: len(events)}
	maxStep := 0
	for _, e := range events {
		switch e.Type {
		case LedgerRunStart:
			if rec.App == "" {
				rec.App = e.Name
			}
		case LedgerRunEnd:
			rec.Ended = true
		case LedgerStep:
			if e.Step > maxStep {
				maxStep = e.Step
			}
		case LedgerAlert:
			rec.Alerts++
		case LedgerReplan:
			rec.Replans++
		case LedgerSolve:
			rec.Solves = append(rec.Solves, SolveSummary{
				Name:      e.Name,
				Nodes:     int(e.Args["nodes"]),
				Pivots:    int(e.Args["pivots"]),
				Objective: e.Args["objective"],
				WallUS:    e.Dur,
			})
		}
	}
	rec.Steps = maxStep
	for _, run := range GroupSolveProgEvents(events) {
		rec.Flights = append(rec.Flights, summarizeFlight(run))
	}
	return rec
}

// ScanRuns indexes every *.jsonl ledger under dir (sorted by name, so the
// registry order is deterministic). Unreadable or malformed files become
// Warnings, not errors.
func ScanRuns(dir string) (*RunRegistry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	reg := &RunRegistry{}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			reg.Warnings = append(reg.Warnings, fmt.Sprintf("%s: %v", p, err))
			continue
		}
		events, _, err := ReadLedgerStats(f)
		f.Close()
		if err != nil {
			reg.Warnings = append(reg.Warnings, fmt.Sprintf("%s: %v", p, err))
			continue
		}
		reg.Runs = append(reg.Runs, IndexLedger(p, events))
	}
	return reg, nil
}

// Filter returns the registry restricted to runs whose app, path, solve, or
// flight name contains q (case-insensitive). An empty q returns r itself.
func (r *RunRegistry) Filter(q string) *RunRegistry {
	if q == "" {
		return r
	}
	q = strings.ToLower(q)
	match := func(rec RunRecord) bool {
		if strings.Contains(strings.ToLower(rec.App), q) || strings.Contains(strings.ToLower(rec.Path), q) {
			return true
		}
		for _, s := range rec.Solves {
			if strings.Contains(strings.ToLower(s.Name), q) {
				return true
			}
		}
		for _, f := range rec.Flights {
			if strings.Contains(strings.ToLower(f.Name), q) {
				return true
			}
		}
		return false
	}
	out := &RunRegistry{Warnings: r.Warnings}
	for _, rec := range r.Runs {
		if match(rec) {
			out.Runs = append(out.Runs, rec)
		}
	}
	return out
}

// HistoryRow aggregates one solve name across every indexed run, in run
// order — the cross-run trend behind "is this instance getting slower".
type HistoryRow struct {
	Name   string    `json:"name"`
	Runs   int       `json:"runs"`
	Nodes  []int     `json:"nodes"`
	Pivots []int     `json:"pivots"`
	WallUS []float64 `json:"wall_us"`
	// GapCloseNodes tracks the flight streams' 10%-gap-closure node counts
	// (absent for plain solve events).
	GapCloseNodes []int `json:"gap_close_nodes,omitempty"`
}

// History groups solves and flights by name across runs, names sorted.
func (r *RunRegistry) History() []HistoryRow {
	byName := map[string]*HistoryRow{}
	at := func(name string) *HistoryRow {
		h, ok := byName[name]
		if !ok {
			h = &HistoryRow{Name: name}
			byName[name] = h
		}
		return h
	}
	for _, rec := range r.Runs {
		for _, s := range rec.Solves {
			h := at(s.Name)
			h.Runs++
			h.Nodes = append(h.Nodes, s.Nodes)
			h.Pivots = append(h.Pivots, s.Pivots)
			h.WallUS = append(h.WallUS, s.WallUS)
		}
		for _, f := range rec.Flights {
			h := at(f.Name)
			h.Runs++
			h.Nodes = append(h.Nodes, f.Nodes)
			h.Pivots = append(h.Pivots, f.Pivots)
			h.WallUS = append(h.WallUS, f.WallUS)
			h.GapCloseNodes = append(h.GapCloseNodes, f.GapCloseNode)
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]HistoryRow, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	return out
}

// WriteJSON emits the registry as one indented JSON document, history
// included.
func (r *RunRegistry) WriteJSON(w io.Writer) error {
	doc := struct {
		*RunRegistry
		History []HistoryRow `json:"history"`
	}{r, r.History()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteTable renders the registry as text: one row per run, one per solve,
// then the cross-run history with pivot trends.
func (r *RunRegistry) WriteTable(w io.Writer) error {
	for _, warn := range r.Warnings {
		if _, err := fmt.Fprintf(w, "warning: %s\n", warn); err != nil {
			return err
		}
	}
	if len(r.Runs) == 0 {
		_, err := fmt.Fprintln(w, "registry: no run ledgers found")
		return err
	}
	for _, rec := range r.Runs {
		state := "running"
		if rec.Ended {
			state = "ended"
		}
		if _, err := fmt.Fprintf(w, "run %s  app=%s steps=%d events=%d %s alerts=%d replans=%d\n",
			rec.Path, orDash(rec.App), rec.Steps, rec.Events, state, rec.Alerts, rec.Replans); err != nil {
			return err
		}
		for _, s := range rec.Solves {
			if _, err := fmt.Fprintf(w, "  solve  %-20s nodes=%-6d pivots=%-8d objective=%-12g wall=%.0fus\n",
				s.Name, s.Nodes, s.Pivots, s.Objective, s.WallUS); err != nil {
				return err
			}
		}
		for _, f := range rec.Flights {
			line := fmt.Sprintf("  flight %-20s events=%-5d nodes=%-6d pivots=%-8d width=%d",
				orDash(f.Name), f.Events, f.Nodes, f.Pivots, f.Workers)
			if f.Status != "" {
				line += " status=" + f.Status
			}
			if f.HasGap {
				line += fmt.Sprintf(" gap=%.4g", f.FinalGap)
			}
			if f.GapCloseNode > 0 {
				line += fmt.Sprintf(" gap90@node=%d", f.GapCloseNode)
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	hist := r.History()
	if len(hist) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "history (%d solve name(s) across %d run(s)):\n", len(hist), len(r.Runs)); err != nil {
		return err
	}
	for _, h := range hist {
		if _, err := fmt.Fprintf(w, "  %-20s runs=%-3d pivots=%s wall_us=%s\n",
			h.Name, h.Runs, intTrend(h.Pivots), floatTrend(h.WallUS)); err != nil {
			return err
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// intTrend renders a short first→last trend with min/max for a series.
func intTrend(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return fmt.Sprintf("%d→%d (min %d, max %d)", xs[0], xs[len(xs)-1], lo, hi)
}

func floatTrend(xs []float64) string {
	if len(xs) == 0 {
		return "-"
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return fmt.Sprintf("%.0f→%.0f (min %.0f, max %.0f)", xs[0], xs[len(xs)-1], lo, hi)
}
