package obs

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.SetClock(newFakeClock(time.Millisecond).now)

	l.Append(LedgerEvent{Type: LedgerRunStart, Name: "mdsim", Args: map[string]float64{"steps": 4}})
	l.Event(LedgerStep, "", 1, 2*time.Millisecond)
	l.Append(LedgerEvent{Type: LedgerAnalysis, Name: "rdf", Step: 1, Dur: 500})
	l.Append(LedgerEvent{Type: LedgerOutput, Name: "rdf", Step: 1, Dur: 120, Bytes: 4096})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d", l.Len())
	}

	events, err := ReadLedger(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("read %d events, want 4", len(events))
	}
	for i, e := range events {
		if e.Schema != LedgerSchemaVersion {
			t.Fatalf("event %d schema = %d", i, e.Schema)
		}
	}
	if events[0].Type != LedgerRunStart || events[0].Args["steps"] != 4 {
		t.Fatalf("run_start = %+v", events[0])
	}
	if events[1].Dur != 2000 {
		t.Fatalf("step dur = %g us, want 2000", events[1].Dur)
	}
	if events[3].Bytes != 4096 {
		t.Fatalf("output bytes = %d", events[3].Bytes)
	}
}

func TestEventLogDeterministicBytes(t *testing.T) {
	write := func() string {
		var buf bytes.Buffer
		l := NewEventLog(&buf)
		l.SetClock(newFakeClock(time.Millisecond).now)
		l.Append(LedgerEvent{Type: LedgerSolve, Name: "plan", Dur: 10,
			Args: map[string]float64{"nodes": 3, "pivots": 17, "objective": 41}})
		l.Close()
		return buf.String()
	}
	a, b := write(), write()
	if a != b {
		t.Fatalf("ledger not byte-stable:\n%s\n%s", a, b)
	}
	// Map keys are sorted by encoding/json, so the line is a fixed string.
	want := `{"v":1,"type":"solve","name":"plan","ts_us":1000,"dur_us":10,"args":{"nodes":3,"objective":41,"pivots":17}}` + "\n"
	if a != want {
		t.Fatalf("ledger line:\n got %s\nwant %s", a, want)
	}
}

func TestEventLogSchemaRejection(t *testing.T) {
	// Future-schema lines are skipped with a count (forward compatibility),
	// not an error; see TestReadLedgerSkipsNewerSchema.
	events, stats, err := ReadLedgerStats(strings.NewReader(`{"v":99,"type":"step"}`))
	if err != nil || len(events) != 0 || stats.SkippedNewer != 1 {
		t.Fatalf("future schema: events=%v stats=%+v err=%v", events, stats, err)
	}
	if _, err := ReadLedger(strings.NewReader("not json")); err == nil {
		t.Fatal("malformed line accepted")
	}
	// Blank lines are fine.
	blank, err := ReadLedger(strings.NewReader("\n\n" + `{"v":1,"type":"step","step":1}` + "\n\n"))
	if err != nil || len(blank) != 1 {
		t.Fatalf("events=%v err=%v", blank, err)
	}
}

func TestEventLogNilAndErrors(t *testing.T) {
	var l *EventLog
	l.Append(LedgerEvent{Type: LedgerStep})
	l.Event(LedgerStep, "", 1, time.Second)
	l.SetClock(time.Now)
	if l.Len() != 0 || l.Err() != nil || l.Close() != nil {
		t.Fatal("nil event log not a no-op")
	}

	// Write failures are sticky.
	fl := NewEventLog(failWriter{})
	fl.Append(LedgerEvent{Type: LedgerStep, Step: 1})
	if fl.Err() == nil {
		t.Fatal("failing writer error not captured")
	}
	before := fl.Err()
	fl.Append(LedgerEvent{Type: LedgerStep, Step: 2})
	if fl.Err() != before {
		t.Fatal("first error not sticky")
	}
}

func TestEventLogFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Event(LedgerStep, "", 1, time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLedgerFile(path)
	if err != nil || len(events) != 1 {
		t.Fatalf("events=%v err=%v", events, err)
	}
	if _, err := OpenEventLog(filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl")); err == nil {
		t.Fatal("unwritable ledger path accepted")
	}
	if _, err := ReadLedgerFile(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("absent ledger file accepted")
	}
}

func TestEventLogConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Event(LedgerStep, "", g*50+i, time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 400 {
		t.Fatalf("events = %d, want 400", len(events))
	}
}

func TestSummarizeLedger(t *testing.T) {
	events := []LedgerEvent{
		{Type: LedgerRunStart, Name: "mdsim"},
		{Type: LedgerSolve, Name: "plan", Dur: 99, Args: map[string]float64{"nodes": 5, "pivots": 40, "objective": 12}},
		{Type: LedgerStep, Step: 1, Dur: 100},
		{Type: LedgerAnalysis, Name: "rdf", Step: 1, Dur: 30},
		{Type: LedgerStep, Step: 2, Dur: 110},
		{Type: LedgerAnalysis, Name: "rdf", Step: 2, Dur: 31},
		{Type: LedgerAnalysis, Name: "msd", Step: 2, Dur: 55},
		{Type: LedgerOutput, Name: "rdf", Step: 2, Dur: 7, Bytes: 1024},
		{Type: LedgerRunEnd},
	}
	s := SummarizeLedger(events)
	if s.App != "mdsim" || s.Runs != 1 {
		t.Fatalf("summary header = %+v", s)
	}
	if len(s.Steps) != 2 || s.Steps[0].Step != 1 || s.Steps[1].Step != 2 {
		t.Fatalf("steps = %+v", s.Steps)
	}
	if s.Steps[1].Analyses["msd"] != 55 || s.Steps[1].Outputs["rdf"] != 7 || s.Steps[1].Bytes != 1024 {
		t.Fatalf("step 2 = %+v", s.Steps[1])
	}
	if s.TotalUS != 210 {
		t.Fatalf("total = %g", s.TotalUS)
	}
	if len(s.Solves) != 1 || s.Solves[0].Args["pivots"] != 40 {
		t.Fatalf("solves = %+v", s.Solves)
	}

	var buf bytes.Buffer
	if err := s.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"run: mdsim", "msd/analyze 55us", "rdf/output 7us", "total step time: 210 us"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	if err := s.WriteTimeline(failWriter{}); err == nil {
		t.Fatal("timeline to failing writer succeeded")
	}
}

func TestSummarizeLedgerEmpty(t *testing.T) {
	s := SummarizeLedger(nil)
	if !s.Empty() {
		t.Fatalf("summary of no events = %+v, want empty", s)
	}
	var buf bytes.Buffer
	if err := s.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "ledger: no events\n" {
		t.Fatalf("empty timeline = %q", got)
	}
	// A summary with any content must not claim emptiness.
	if SummarizeLedger([]LedgerEvent{{Type: LedgerStep, Step: 1}}).Empty() {
		t.Fatal("one-step summary reported empty")
	}
	if SummarizeLedger([]LedgerEvent{{Type: LedgerSolve, Name: "plan"}}).Empty() {
		t.Fatal("solve-only summary reported empty")
	}
}

func TestReadLedgerSkipsNewerSchema(t *testing.T) {
	input := `{"v":1,"type":"run_start","name":"app"}
{"v":2,"type":"hologram","name":"future"}
{"v":1,"type":"step","step":1,"ts_us":5,"dur_us":100}
{"v":9,"type":"step","step":2,"ts_us":6,"dur_us":100}
`
	events, stats, err := ReadLedgerStats(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("kept %d events, want 2", len(events))
	}
	if stats.Lines != 4 || stats.SkippedNewer != 2 {
		t.Fatalf("stats = %+v, want 4 lines / 2 skipped", stats)
	}
	// The plain reader is equally lenient.
	plain, err := ReadLedger(strings.NewReader(input))
	if err != nil || len(plain) != 2 {
		t.Fatalf("ReadLedger = %d events, %v", len(plain), err)
	}
}

func TestReadLedgerRejectsMissingSchema(t *testing.T) {
	if _, err := ReadLedger(strings.NewReader(`{"type":"step","step":1}`)); err == nil {
		t.Fatal("want error for line without a schema version")
	}
	if _, err := ReadLedger(strings.NewReader(`{nope`)); err == nil {
		t.Fatal("want error for malformed JSON")
	}
}

func TestSummarizeLedgerCountsUnknownTypes(t *testing.T) {
	events := []LedgerEvent{
		{Schema: 1, Type: LedgerRunStart, Name: "app"},
		{Schema: 1, Type: LedgerStep, Step: 1, Dur: 100},
		{Schema: 1, Type: "quantum_flux", Step: 1, Dur: 5},
		{Schema: 1, Type: "quantum_flux", Step: 2, Dur: 5},
		{Schema: 1, Type: "telemetry_v2"},
		{Schema: 1, Type: LedgerAlert, Name: "sim", Step: 1},
		{Schema: 1, Type: LedgerPlan, Name: "sim"},
	}
	s := SummarizeLedger(events)
	if s.Unknown["quantum_flux"] != 2 || s.Unknown["telemetry_v2"] != 1 {
		t.Fatalf("unknown counts = %v", s.Unknown)
	}
	if s.UnknownCount() != 3 {
		t.Fatalf("UnknownCount = %d, want 3", s.UnknownCount())
	}
	// alert and plan are known types: never counted as unknown.
	if _, ok := s.Unknown[LedgerAlert]; ok {
		t.Fatal("alert counted as unknown")
	}
	var buf bytes.Buffer
	if err := s.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "warning: skipped 3 event(s) of unknown type: quantum_flux×2, telemetry_v2×1") {
		t.Fatalf("timeline missing skip warning:\n%s", out)
	}
}

func TestKnownLedgerType(t *testing.T) {
	for _, typ := range []string{LedgerRunStart, LedgerRunEnd, LedgerStep, LedgerPhase,
		LedgerAnalysis, LedgerOutput, LedgerSolve, LedgerPlan, LedgerAlert} {
		if !KnownLedgerType(typ) {
			t.Fatalf("%s should be known", typ)
		}
	}
	if KnownLedgerType("quantum_flux") {
		t.Fatal("quantum_flux should be unknown")
	}
}
