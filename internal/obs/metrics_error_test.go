package obs

import (
	"errors"
	"testing"
)

func TestValidMetricName(t *testing.T) {
	for _, name := range []string{"a", "runs_total", "ns:sub_sys:metric", "_hidden", "Up9"} {
		if err := ValidMetricName(name); err != nil {
			t.Errorf("ValidMetricName(%q) = %v, want nil", name, err)
		}
	}
	for _, name := range []string{"", "9lives", "has space", "dash-ed", "dotted.name", "unié"} {
		err := ValidMetricName(name)
		if err == nil {
			t.Errorf("ValidMetricName(%q) = nil, want error", name)
			continue
		}
		var me *MetricError
		if !errors.As(err, &me) || me.Name != name {
			t.Errorf("ValidMetricName(%q) = %v, want *MetricError carrying the name", name, err)
		}
	}
}

// mustPanicMetricError runs f and asserts it panics with a *MetricError for
// the given metric name.
func mustPanicMetricError(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: no panic", name)
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("%s: panic value %v is not an error", name, r)
		}
		var me *MetricError
		if !errors.As(err, &me) {
			t.Fatalf("%s: panic error %v is not a *MetricError", name, err)
		}
		if me.Name != name {
			t.Fatalf("%s: MetricError.Name = %q", name, me.Name)
		}
	}()
	f()
}

func TestRegistryRejectsInvalidName(t *testing.T) {
	r := NewRegistry()
	mustPanicMetricError(t, "bad name", func() { r.Counter("bad name", nil) })
	mustPanicMetricError(t, "", func() { r.Gauge("", nil) })
}

func TestRegistryRejectsKindConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", nil)
	mustPanicMetricError(t, "runs_total", func() { r.Gauge("runs_total", nil) })
	mustPanicMetricError(t, "runs_total", func() { r.Histogram("runs_total", nil, nil) })
	// The original registration is untouched by the failed ones.
	r.Counter("runs_total", nil).Add(1)
	if v := r.Counter("runs_total", nil).Value(); v != 1 {
		t.Fatalf("counter after rejected re-registrations = %g", v)
	}
}

func TestRegistryRejectsBucketConflict(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", []float64{1, 10}, nil).Observe(5)
	// Empty buckets are a handle lookup, not a conflicting registration.
	if c := r.Histogram("lat", nil, nil).Count(); c != 1 {
		t.Fatalf("lookup with nil buckets sees count %d, want 1", c)
	}
	if c := r.Histogram("lat", []float64{1, 10}, nil).Count(); c != 1 {
		t.Fatalf("lookup with identical buckets sees count %d, want 1", c)
	}
	mustPanicMetricError(t, "lat", func() { r.Histogram("lat", []float64{1, 10, 100}, nil) })
	mustPanicMetricError(t, "lat", func() { r.Histogram("lat", []float64{1, 20}, nil) })
}

func TestMetricErrorMessage(t *testing.T) {
	err := &MetricError{Name: "lat", Reason: "boom"}
	if got := err.Error(); got != `obs: metric "lat": boom` {
		t.Fatalf("Error() = %q", got)
	}
}
