package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total", nil).Add(7)
	srv := httptest.NewServer(NewServeMux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body = get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "steps_total 7") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body = get("/metrics.json")
	if code != http.StatusOK || !strings.Contains(body, `"name": "steps_total"`) {
		t.Fatalf("/metrics.json = %d %q", code, body)
	}
	// pprof index lists the runtime profiles.
	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, _ = get("/debug/pprof/heap")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap = %d", code)
	}
}

func TestMetricsHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Fatalf("nil registry /metrics = %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	MetricsJSONHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("nil registry /metrics.json = %q", rec.Body.String())
	}
}

func TestServeLoop(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	bgStopped := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ServeLoop(ctx, ln, NewServeMux(nil), func(bgCtx context.Context) error {
			<-bgCtx.Done()
			close(bgStopped)
			return nil
		})
	}()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeLoop after cancel: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeLoop did not return after context cancellation")
	}
	select {
	case <-bgStopped:
	default:
		t.Fatal("ServeLoop returned before the background task drained")
	}
}

func TestServeLoopBackgroundError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	want := io.ErrUnexpectedEOF
	done := make(chan error, 1)
	go func() {
		done <- ServeLoop(ctx, ln, NewServeMux(nil), func(context.Context) error { return want })
	}()
	// The background task fails immediately; the loop still serves until the
	// context ends, then surfaces the background error.
	cancel()
	select {
	case err := <-done:
		if err != want {
			t.Fatalf("ServeLoop = %v, want %v", err, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeLoop did not return")
	}
}

func TestServeUntilGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Counter("up", nil).Inc()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeUntil(ctx, ln, NewServeMux(reg)) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "up 1") {
		t.Fatalf("/metrics = %d %q", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeUntil after cancel: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeUntil did not return after context cancellation")
	}
}
