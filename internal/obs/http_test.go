package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total", nil).Add(7)
	srv := httptest.NewServer(NewServeMux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "steps_total 7") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body = get("/metrics.json")
	if code != http.StatusOK || !strings.Contains(body, `"name": "steps_total"`) {
		t.Fatalf("/metrics.json = %d %q", code, body)
	}
	// pprof index lists the runtime profiles.
	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, _ = get("/debug/pprof/heap")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap = %d", code)
	}
}

func TestMetricsHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Fatalf("nil registry /metrics = %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	MetricsJSONHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("nil registry /metrics.json = %q", rec.Body.String())
	}
}
