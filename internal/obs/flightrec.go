package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
)

// SolveProgSchemaVersion is the version stamped into every solveprog ledger
// event as the "solveprog_v" arg. Readers skip events stamped with a newer
// version, mirroring alert_v and replan_v.
const SolveProgSchemaVersion = 1

// Solve progress kinds, matching milp's Progress* constants. obs does not
// import milp (it is the dependency leaf), so the vocabulary is duplicated
// here and pinned by the codec tests.
const (
	SolveProgStart     = "start"
	SolveProgWave      = "wave"
	SolveProgIncumbent = "incumbent"
	SolveProgEnd       = "end"
)

// SolveProgress is one sample of the solver flight stream: the obs-side
// record of a milp.ProgressEvent, decoupled from the solver packages so the
// ledger, HTTP, and registry layers need no milp import. All counters are
// cumulative since solve start. TUS follows the solver's wall clock and is
// the only field excluded from the per-width determinism contract.
type SolveProgress struct {
	Seq  int     `json:"seq"`
	Kind string  `json:"kind"`
	TUS  float64 `json:"t_us"`

	Wave     int `json:"wave"`
	WaveSize int `json:"wave_size,omitempty"`
	Workers  int `json:"workers"`
	Nodes    int `json:"nodes"`
	Open     int `json:"open"`

	// HasInc gates Incumbent; HasBound gates Bound (the solver's bound can
	// be ±Inf, which JSON cannot carry, so non-finite bounds are recorded as
	// absent). The absolute gap is Bound-Incumbent when both are present.
	HasInc    bool    `json:"has_inc"`
	Incumbent float64 `json:"incumbent,omitempty"`
	HasBound  bool    `json:"has_bound"`
	Bound     float64 `json:"bound,omitempty"`

	Pivots        int `json:"pivots"`
	Relaxations   int `json:"relaxations"`
	WarmSolves    int `json:"warm"`
	ColdSolves    int `json:"cold"`
	FallbackColds int `json:"fallback_cold,omitempty"`

	// Revised-simplex internals: warm re-solves pruned on a dual
	// infeasibility certificate, the primal/dual pivot split, basis
	// refactorizations, and the peak eta-file length. Zero on streams
	// recorded before solveprog carried them (the schema version is
	// unchanged: absent args decode to zero).
	WarmInfeasibles  int `json:"warm_infeasible,omitempty"`
	PrimalPivots     int `json:"primal_pivots,omitempty"`
	DualPivots       int `json:"dual_pivots,omitempty"`
	Refactorizations int `json:"refactorizations,omitempty"`
	EtaPeak          int `json:"eta_peak,omitempty"`

	PrunedBound      int `json:"prune_bound"`
	PrunedInfeasible int `json:"prune_infeasible"`
	IntegralNodes    int `json:"integral"`
	BranchedNodes    int `json:"branched"`
	QueuePruned      int `json:"queue_pruned"`

	Vars        int `json:"vars,omitempty"`
	IntVars     int `json:"int_vars,omitempty"`
	Constraints int `json:"constraints,omitempty"`

	// Status is set on end events: "optimal", "infeasible", "unbounded", or
	// "node-limit".
	Status string `json:"status,omitempty"`
}

// Gap returns the absolute optimality gap Bound-Incumbent and whether it is
// defined (incumbent and finite bound both present).
func (p SolveProgress) Gap() (float64, bool) {
	if !p.HasInc || !p.HasBound {
		return math.Inf(1), false
	}
	return p.Bound - p.Incumbent, true
}

// solveProgStatusCodes maps end-event statuses to the numeric codes the
// ledger args carry (args are float64-only).
var solveProgStatusCodes = map[string]float64{
	"optimal":    0,
	"infeasible": 1,
	"unbounded":  2,
	"node-limit": 3,
}

func solveProgStatusName(code float64) string {
	for name, c := range solveProgStatusCodes {
		if c == code {
			return name
		}
	}
	return fmt.Sprintf("status-%g", code)
}

var solveProgKindCodes = map[string]float64{
	SolveProgStart:     0,
	SolveProgWave:      1,
	SolveProgIncumbent: 2,
	SolveProgEnd:       3,
}

func solveProgKindName(code float64) string {
	for name, c := range solveProgKindCodes {
		if c == code {
			return name
		}
	}
	return fmt.Sprintf("kind-%g", code)
}

// Event encodes the record as one schema-versioned solveprog ledger event
// under the given solve name, the same codec pattern as
// runmon.ReplanRecord.Event.
func (p SolveProgress) Event(name string) LedgerEvent {
	args := map[string]float64{
		"solveprog_v":      SolveProgSchemaVersion,
		"seq":              float64(p.Seq),
		"kind":             solveProgKindCodes[p.Kind],
		"t_us":             p.TUS,
		"wave":             float64(p.Wave),
		"workers":          float64(p.Workers),
		"nodes":            float64(p.Nodes),
		"open":             float64(p.Open),
		"pivots":           float64(p.Pivots),
		"relaxations":      float64(p.Relaxations),
		"warm":             float64(p.WarmSolves),
		"cold":             float64(p.ColdSolves),
		"fallback_cold":    float64(p.FallbackColds),
		"warm_infeasible":  float64(p.WarmInfeasibles),
		"primal_pivots":    float64(p.PrimalPivots),
		"dual_pivots":      float64(p.DualPivots),
		"refactorizations": float64(p.Refactorizations),
		"eta_peak":         float64(p.EtaPeak),
		"prune_bound":      float64(p.PrunedBound),
		"prune_infeasible": float64(p.PrunedInfeasible),
		"integral":         float64(p.IntegralNodes),
		"branched":         float64(p.BranchedNodes),
		"queue_pruned":     float64(p.QueuePruned),
	}
	if p.WaveSize > 0 {
		args["wave_size"] = float64(p.WaveSize)
	}
	if p.HasInc {
		args["incumbent"] = p.Incumbent
	}
	if p.HasBound {
		args["bound"] = p.Bound
	}
	if p.Kind == SolveProgStart {
		args["vars"] = float64(p.Vars)
		args["int_vars"] = float64(p.IntVars)
		args["constraints"] = float64(p.Constraints)
	}
	if p.Kind == SolveProgEnd {
		args["status"] = solveProgStatusCodes[p.Status]
	}
	return LedgerEvent{Type: LedgerSolveProg, Name: name, Args: args}
}

// SolveProgFromEvent decodes one solveprog ledger event. It returns false
// for events of other types, events missing the version stamp, and events
// from a newer solveprog schema (forward compatibility: skip, don't fail).
func SolveProgFromEvent(e LedgerEvent) (SolveProgress, bool) {
	if e.Type != LedgerSolveProg {
		return SolveProgress{}, false
	}
	v, ok := e.Args["solveprog_v"]
	if !ok || v > SolveProgSchemaVersion {
		return SolveProgress{}, false
	}
	p := SolveProgress{
		Seq:              int(e.Args["seq"]),
		Kind:             solveProgKindName(e.Args["kind"]),
		TUS:              e.Args["t_us"],
		Wave:             int(e.Args["wave"]),
		WaveSize:         int(e.Args["wave_size"]),
		Workers:          int(e.Args["workers"]),
		Nodes:            int(e.Args["nodes"]),
		Open:             int(e.Args["open"]),
		Pivots:           int(e.Args["pivots"]),
		Relaxations:      int(e.Args["relaxations"]),
		WarmSolves:       int(e.Args["warm"]),
		ColdSolves:       int(e.Args["cold"]),
		FallbackColds:    int(e.Args["fallback_cold"]),
		WarmInfeasibles:  int(e.Args["warm_infeasible"]),
		PrimalPivots:     int(e.Args["primal_pivots"]),
		DualPivots:       int(e.Args["dual_pivots"]),
		Refactorizations: int(e.Args["refactorizations"]),
		EtaPeak:          int(e.Args["eta_peak"]),
		PrunedBound:      int(e.Args["prune_bound"]),
		PrunedInfeasible: int(e.Args["prune_infeasible"]),
		IntegralNodes:    int(e.Args["integral"]),
		BranchedNodes:    int(e.Args["branched"]),
		QueuePruned:      int(e.Args["queue_pruned"]),
		Vars:             int(e.Args["vars"]),
		IntVars:          int(e.Args["int_vars"]),
		Constraints:      int(e.Args["constraints"]),
	}
	if inc, ok := e.Args["incumbent"]; ok {
		p.HasInc, p.Incumbent = true, inc
	}
	if b, ok := e.Args["bound"]; ok {
		p.HasBound, p.Bound = true, b
	}
	if p.Kind == SolveProgEnd {
		p.Status = solveProgStatusName(e.Args["status"])
	}
	return p, true
}

// SolveProgFromEvents decodes every solveprog event in a ledger, in order.
// Old ledgers without solveprog events decode to nil — graceful no-op.
func SolveProgFromEvents(events []LedgerEvent) []SolveProgress {
	var out []SolveProgress
	for _, e := range events {
		if p, ok := SolveProgFromEvent(e); ok {
			out = append(out, p)
		}
	}
	return out
}

// DefaultFlightCapacity is the ring size NewFlightRecorder uses for
// capacity <= 0: large enough to hold every event of the paper instances
// (hundreds of waves) with room for big what-if sweeps.
const DefaultFlightCapacity = 8192

// FlightRecorder captures a solver progress stream into a fixed-size ring
// buffer. It is safe for concurrent use (the solver records from its consume
// path while an HTTP handler snapshots) and nil-safe, so instrumented code
// needs no enable checks. When the ring wraps, the oldest records drop and
// Dropped counts them; because every SolveProgress counter is cumulative, a
// suffix of the stream still reads correct totals.
type FlightRecorder struct {
	mu      sync.Mutex
	name    string
	buf     []SolveProgress
	next    int
	filled  bool
	total   int
	dropped int
}

// NewFlightRecorder returns a recorder holding up to capacity records
// (DefaultFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]SolveProgress, 0, capacity)}
}

// SetName labels the stream (typically the solve or instance name); it is
// carried into ledger events and page titles.
func (r *FlightRecorder) SetName(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.name = name
}

// Name returns the stream label.
func (r *FlightRecorder) Name() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.name
}

// Record appends one progress sample, evicting the oldest when full.
func (r *FlightRecorder) Record(p SolveProgress) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if !r.filled && len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, p)
		if len(r.buf) == cap(r.buf) {
			r.filled, r.next = true, 0
		}
		return
	}
	r.buf[r.next] = p
	r.next = (r.next + 1) % len(r.buf)
	r.dropped++
}

// Reset clears the ring (capacity and name are kept).
func (r *FlightRecorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
	r.next, r.filled, r.total, r.dropped = 0, false, 0, 0
}

// Len returns the number of records currently held.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of records ever recorded (dropped included).
func (r *FlightRecorder) Total() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many records the ring evicted.
func (r *FlightRecorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot returns the held records oldest-first.
func (r *FlightRecorder) Snapshot() []SolveProgress {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SolveProgress, 0, len(r.buf))
	if r.filled {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// AppendLedger drains the held records into the ledger as solveprog events,
// one line per record, under the recorder's name (or name when non-empty).
func (r *FlightRecorder) AppendLedger(l *EventLog, name string) {
	if r == nil || l == nil {
		return
	}
	if name == "" {
		name = r.Name()
	}
	for _, p := range r.Snapshot() {
		l.Append(p.Event(name))
	}
}

// AppendTraceCounters drains the held records into t as Chrome-trace counter
// events (incumbent, bound, gap, open nodes), timestamped at the record's
// solver-clock offset so the counters line up with solver spans.
func (r *FlightRecorder) AppendTraceCounters(t *Tracer) {
	if r == nil || t == nil {
		return
	}
	for _, p := range r.Snapshot() {
		if p.HasInc {
			t.Counter("solve/incumbent", p.Incumbent)
		}
		if p.HasBound {
			t.Counter("solve/bound", p.Bound)
		}
		if gap, ok := p.Gap(); ok {
			t.Counter("solve/gap", gap)
		}
		t.Counter("solve/open_nodes", float64(p.Open))
	}
}

// flightJSON is the /solve.json document.
type flightJSON struct {
	Schema  int             `json:"solveprog_v"`
	Name    string          `json:"name,omitempty"`
	Total   int             `json:"total"`
	Dropped int             `json:"dropped,omitempty"`
	Events  []SolveProgress `json:"events"`
}

// WriteJSON emits the held stream as one indented JSON document (the
// /solve.json payload).
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	doc := flightJSON{Schema: SolveProgSchemaVersion, Events: []SolveProgress{}}
	if r != nil {
		doc.Name = r.Name()
		doc.Total = r.Total()
		doc.Dropped = r.Dropped()
		doc.Events = r.Snapshot()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DeterministicBytes renders the full stream in a byte-stable text form with
// the wall-clock field (t_us) excluded: for a fixed solver width the result
// is identical run to run, which is what the solvercheck flight-determinism
// corpus pins.
func DeterministicBytes(recs []SolveProgress) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "solveprog_v=%d stream events=%d\n", SolveProgSchemaVersion, len(recs))
	for _, p := range recs {
		fmt.Fprintf(&b, "%d %s wave=%d size=%d workers=%d nodes=%d open=%d",
			p.Seq, p.Kind, p.Wave, p.WaveSize, p.Workers, p.Nodes, p.Open)
		if p.HasInc {
			fmt.Fprintf(&b, " inc=%.9g", p.Incumbent)
		}
		if p.HasBound {
			fmt.Fprintf(&b, " bound=%.9g", p.Bound)
		}
		fmt.Fprintf(&b, " pivots=%d relax=%d warm=%d cold=%d fb=%d wi=%d pp=%d dp=%d refac=%d eta=%d prune=%d/%d int=%d branch=%d qprune=%d",
			p.Pivots, p.Relaxations, p.WarmSolves, p.ColdSolves, p.FallbackColds,
			p.WarmInfeasibles, p.PrimalPivots, p.DualPivots, p.Refactorizations, p.EtaPeak,
			p.PrunedBound, p.PrunedInfeasible, p.IntegralNodes, p.BranchedNodes, p.QueuePruned)
		if p.Kind == SolveProgStart {
			fmt.Fprintf(&b, " vars=%d ints=%d rows=%d", p.Vars, p.IntVars, p.Constraints)
		}
		if p.Kind == SolveProgEnd {
			fmt.Fprintf(&b, " status=%s", p.Status)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// CanonicalBytes renders the width-invariant projection of the stream: the
// problem shape from the start event and the terminal status, objective,
// bound, and gap from the end event. The parallel search explores a
// different tree at different widths (see milp.runParallel), but the
// objective and terminal bound are identical at any width — so this
// projection is byte-identical at Workers=1 and Workers=8 while
// DeterministicBytes pins the full per-wave stream per width.
func CanonicalBytes(recs []SolveProgress) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "solveprog_v=%d canonical\n", SolveProgSchemaVersion)
	for _, p := range recs {
		switch p.Kind {
		case SolveProgStart:
			fmt.Fprintf(&b, "start vars=%d ints=%d rows=%d\n", p.Vars, p.IntVars, p.Constraints)
		case SolveProgEnd:
			fmt.Fprintf(&b, "end status=%s has_inc=%t", p.Status, p.HasInc)
			if p.HasInc {
				fmt.Fprintf(&b, " objective=%.9g", p.Incumbent)
			}
			if p.HasBound {
				fmt.Fprintf(&b, " bound=%.9g", p.Bound)
			}
			if gap, ok := p.Gap(); ok {
				fmt.Fprintf(&b, " gap=%.9g", gap)
			}
			b.WriteByte('\n')
		}
	}
	return b.Bytes()
}

// checkTol absorbs the solver's numeric guard (warm answers are clamped to
// parent bound + 1e-6) when checking monotonicity.
const checkTol = 1e-6

// CheckSolveProg validates the invariants every well-formed flight stream
// must satisfy: sequence numbers strictly increasing, node counts
// non-decreasing, the incumbent non-decreasing (maximization), the bound
// non-increasing, and the absolute gap non-increasing, all within the
// solver's numeric tolerance. It returns the first violation, or nil. The
// flightrec-smoke CI job runs it over a real solve via benchobs flightcheck.
func CheckSolveProg(recs []SolveProgress) error {
	if len(recs) == 0 {
		return fmt.Errorf("obs: empty solveprog stream")
	}
	lastSeq, lastNodes := -1, -1
	lastInc, lastBound, lastGap := math.Inf(-1), math.Inf(1), math.Inf(1)
	haveInc := false
	for i, p := range recs {
		if p.Seq <= lastSeq {
			return fmt.Errorf("obs: solveprog[%d]: seq %d not above %d", i, p.Seq, lastSeq)
		}
		lastSeq = p.Seq
		if p.Nodes < lastNodes {
			return fmt.Errorf("obs: solveprog[%d]: nodes %d fell below %d", i, p.Nodes, lastNodes)
		}
		lastNodes = p.Nodes
		if p.HasInc {
			if haveInc && p.Incumbent < lastInc-checkTol {
				return fmt.Errorf("obs: solveprog[%d]: incumbent %g fell below %g", i, p.Incumbent, lastInc)
			}
			if p.Incumbent > lastInc {
				lastInc = p.Incumbent
			}
			haveInc = true
		}
		if p.HasBound && p.Kind != SolveProgStart {
			if p.Bound > lastBound+checkTol {
				return fmt.Errorf("obs: solveprog[%d]: bound %g rose above %g", i, p.Bound, lastBound)
			}
			if p.Bound < lastBound {
				lastBound = p.Bound
			}
		}
		if gap, ok := p.Gap(); ok {
			if gap > lastGap+checkTol {
				return fmt.Errorf("obs: solveprog[%d]: gap %g rose above %g", i, gap, lastGap)
			}
			if gap < lastGap {
				lastGap = gap
			}
			if gap < -checkTol {
				return fmt.Errorf("obs: solveprog[%d]: negative gap %g", i, gap)
			}
		}
	}
	return nil
}

// FinalGap returns the end event's absolute gap. ok is false when the stream
// holds no end event or its gap is undefined (no incumbent or infinite
// bound).
func FinalGap(recs []SolveProgress) (gap float64, status string, ok bool) {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind == SolveProgEnd {
			g, defined := recs[i].Gap()
			return g, recs[i].Status, defined
		}
	}
	return 0, "", false
}

// WriteGapTimeline renders the gap-closure timeline of one stream as text:
// a header with the shape and outcome, then up to maxGapRows sampled curve
// rows with a bar visualizing the remaining gap. Streams without any wave
// data still render the header. It is the shared renderer behind benchobs
// summarize, schedexplain, and the runmon report.
func WriteGapTimeline(w io.Writer, name string, recs []SolveProgress) error {
	if len(recs) == 0 {
		return nil
	}
	head := fmt.Sprintf("solve progress %s", name)
	if name == "" {
		head = "solve progress"
	}
	var start, end *SolveProgress
	for i := range recs {
		switch recs[i].Kind {
		case SolveProgStart:
			if start == nil {
				start = &recs[i]
			}
		case SolveProgEnd:
			end = &recs[i]
		}
	}
	last := recs[len(recs)-1]
	if _, err := fmt.Fprintf(w, "%s: %d event(s), %d node(s), %d wave(s) at width %d\n",
		head, len(recs), last.Nodes, last.Wave, last.Workers); err != nil {
		return err
	}
	if start != nil {
		if _, err := fmt.Fprintf(w, "  shape: %d vars (%d integer), %d constraints\n",
			start.Vars, start.IntVars, start.Constraints); err != nil {
			return err
		}
	}
	rows := gapRows(recs)
	initGap := 0.0
	if len(rows) > 0 {
		initGap, _ = rows[0].Gap()
	}
	for _, p := range sampleRows(rows, maxGapRows) {
		gap, _ := p.Gap()
		bar := gapBar(gap, initGap)
		if _, err := fmt.Fprintf(w, "  node %6d  incumbent %-12.6g bound %-12.6g gap %-10.4g %s\n",
			p.Nodes, p.Incumbent, p.Bound, gap, bar); err != nil {
			return err
		}
	}
	if end != nil {
		line := fmt.Sprintf("  final: %s", end.Status)
		if end.HasInc {
			line += fmt.Sprintf(", objective %.6g", end.Incumbent)
		}
		if gap, ok := end.Gap(); ok {
			line += fmt.Sprintf(", gap %.4g", gap)
		}
		line += fmt.Sprintf(" (%d pivots", end.Pivots)
		if end.PrimalPivots > 0 || end.DualPivots > 0 {
			line += fmt.Sprintf(" [%d primal / %d dual, %d refactorization(s), eta peak %d]",
				end.PrimalPivots, end.DualPivots, end.Refactorizations, end.EtaPeak)
		}
		line += fmt.Sprintf(", %d warm / %d cold solves", end.WarmSolves, end.ColdSolves)
		if end.FallbackColds > 0 {
			line += fmt.Sprintf(", %d warm fallback(s)", end.FallbackColds)
		}
		if end.WarmInfeasibles > 0 {
			line += fmt.Sprintf(", %d dual-certified prune(s)", end.WarmInfeasibles)
		}
		line += fmt.Sprintf("; pruned %d bound / %d infeasible, %d integral, %d branched)",
			end.PrunedBound, end.PrunedInfeasible, end.IntegralNodes, end.BranchedNodes)
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// maxGapRows bounds the curve rows WriteGapTimeline prints per stream.
const maxGapRows = 12

// gapRows filters a stream to the rows with a defined gap.
func gapRows(recs []SolveProgress) []SolveProgress {
	var out []SolveProgress
	for _, p := range recs {
		if _, ok := p.Gap(); ok && p.Kind != SolveProgStart {
			out = append(out, p)
		}
	}
	return out
}

// sampleRows keeps at most n rows, always including the first and last.
func sampleRows(rows []SolveProgress, n int) []SolveProgress {
	if len(rows) <= n || n < 2 {
		return rows
	}
	out := make([]SolveProgress, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rows[i*(len(rows)-1)/(n-1)])
	}
	return out
}

// gapBar renders the remaining gap as a fraction of the initial gap.
func gapBar(gap, initGap float64) string {
	const width = 20
	if initGap <= 0 || gap < 0 {
		return "|" + strings.Repeat(" ", width) + "|"
	}
	n := int(math.Round(gap / initGap * width))
	if n > width {
		n = width
	}
	return "|" + strings.Repeat("#", n) + strings.Repeat(" ", width-n) + "|"
}

// GroupSolveProg splits a decoded ledger stream into per-solve runs: a new
// run starts at every start event (ledgers may carry several solves, e.g. a
// campaign sweep). Records before the first start form their own run.
type SolveProgRun struct {
	Name    string
	Records []SolveProgress
}

// GroupSolveProgEvents decodes and groups the solveprog events of a ledger
// by solve, preserving order. Old ledgers yield nil.
func GroupSolveProgEvents(events []LedgerEvent) []SolveProgRun {
	var runs []SolveProgRun
	for _, e := range events {
		p, ok := SolveProgFromEvent(e)
		if !ok {
			continue
		}
		if len(runs) == 0 || p.Kind == SolveProgStart {
			runs = append(runs, SolveProgRun{Name: e.Name})
		}
		r := &runs[len(runs)-1]
		if r.Name == "" {
			r.Name = e.Name
		}
		r.Records = append(r.Records, p)
	}
	return runs
}

// FlightJSONHandler serves the /solve.json document from snap, which must
// return the stream name and an oldest-first snapshot.
func FlightJSONHandler(snap func() (string, []SolveProgress)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		name, recs := snap()
		if recs == nil {
			recs = []SolveProgress{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(flightJSON{Schema: SolveProgSchemaVersion, Name: name, Total: len(recs), Events: recs})
	})
}

// GapCurveHandler serves the /solve HTML page: an inline-SVG gap-closure
// curve (incumbent and bound vs nodes) plus the text timeline, no scripts.
func GapCurveHandler(snap func() (string, []SolveProgress)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		name, recs := snap()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = WriteGapCurveHTML(w, name, recs)
	})
}

// AddFlightRoutes mounts /solve.json and /solve (live gap-curve page) for
// the recorder on mux; benchobs serve and runmon serve both use it.
func AddFlightRoutes(mux *http.ServeMux, r *FlightRecorder) {
	snap := func() (string, []SolveProgress) { return r.Name(), r.Snapshot() }
	mux.Handle("/solve.json", FlightJSONHandler(snap))
	mux.Handle("/solve", GapCurveHandler(snap))
}

// WriteGapCurveHTML renders the gap-closure page: header, an SVG plotting
// incumbent (rising) and bound (falling) against explored nodes, and the
// text timeline for the numbers behind the picture.
func WriteGapCurveHTML(w io.Writer, name string, recs []SolveProgress) error {
	title := "solver flight"
	if name != "" {
		title += ": " + name
	}
	if _, err := fmt.Fprintf(w, `<!doctype html><html><head><meta charset="utf-8"><title>%s</title>
<style>body{font-family:monospace;margin:2em;background:#fafafa}svg{background:#fff;border:1px solid #ccc}pre{background:#fff;border:1px solid #ccc;padding:1em}</style>
</head><body><h1>%s</h1>
`, htmlEscape(title), htmlEscape(title)); err != nil {
		return err
	}
	if len(recs) == 0 {
		if _, err := io.WriteString(w, "<p>no solveprog events recorded yet</p></body></html>\n"); err != nil {
			return err
		}
		return nil
	}
	if err := writeGapCurveSVG(w, recs); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "<pre>"); err != nil {
		return err
	}
	var text strings.Builder
	if err := WriteGapTimeline(&text, name, recs); err != nil {
		return err
	}
	if _, err := io.WriteString(w, htmlEscape(text.String())); err != nil {
		return err
	}
	_, err := io.WriteString(w, "</pre></body></html>\n")
	return err
}

func htmlEscape(s string) string {
	rep := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return rep.Replace(s)
}

// writeGapCurveSVG plots the incumbent and bound curves over explored nodes.
func writeGapCurveSVG(w io.Writer, recs []SolveProgress) error {
	rows := gapRows(recs)
	if len(rows) == 0 {
		_, err := io.WriteString(w, "<p>no bounded progress rows yet</p>\n")
		return err
	}
	const W, H, pad = 640.0, 320.0, 40.0
	minN, maxN := float64(rows[0].Nodes), float64(rows[len(rows)-1].Nodes)
	if maxN <= minN {
		maxN = minN + 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range rows {
		lo = math.Min(lo, p.Incumbent)
		hi = math.Max(hi, p.Bound)
	}
	if hi <= lo {
		hi = lo + 1
	}
	x := func(n int) float64 { return pad + (float64(n)-minN)/(maxN-minN)*(W-2*pad) }
	y := func(v float64) float64 { return H - pad - (v-lo)/(hi-lo)*(H-2*pad) }
	poly := func(get func(SolveProgress) float64) string {
		var b strings.Builder
		for i, p := range rows {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.1f,%.1f", x(p.Nodes), y(get(p)))
		}
		return b.String()
	}
	_, err := fmt.Fprintf(w, `<svg width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">
<polyline points="%s" fill="none" stroke="#c0392b" stroke-width="2"/>
<polyline points="%s" fill="none" stroke="#27ae60" stroke-width="2"/>
<text x="%.0f" y="16" fill="#c0392b">bound</text>
<text x="%.0f" y="32" fill="#27ae60">incumbent</text>
<text x="%.0f" y="%.0f" fill="#333">nodes %.0f..%.0f, objective %.6g..%.6g</text>
</svg>
`, W, H, W, H,
		poly(func(p SolveProgress) float64 { return p.Bound }),
		poly(func(p SolveProgress) float64 { return p.Incumbent }),
		pad, pad, pad, H-8, minN, maxN, lo, hi)
	return err
}
