package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// LedgerSchemaVersion is the schema carried in every ledger line; readers
// reject lines from a newer schema rather than misinterpreting them.
const LedgerSchemaVersion = 1

// Ledger event types. The set is open — emitters may add their own — but
// these are the ones the coupling runner and campaign write and that
// SummarizeLedger understands.
const (
	LedgerRunStart  = "run_start" // one per run: args carry steps, kernels
	LedgerRunEnd    = "run_end"   // one per run: args carry totals
	LedgerStep      = "step"      // one per simulation step
	LedgerPhase     = "phase"     // a named phase inside a step or run (advance, plan, ...)
	LedgerAnalysis  = "analysis"  // one kernel analysis invocation
	LedgerOutput    = "output"    // one kernel output invocation
	LedgerSolve     = "solve"     // one MILP solve: args carry nodes, pivots, objective
	LedgerPlan      = "plan"      // predicted profile for one stream, written by monitored runs
	LedgerAlert     = "alert"     // a runmon drift or budget alert: args carry the detector state
	LedgerReplan    = "replan"    // a mid-run reschedule decision: args carry old/new plan value
	LedgerSolveProg = "solveprog" // one solver flight-recorder sample: args carry the solveprog_v payload
	LedgerReqLog    = "reqlog"    // one service request (schedd access ledger): args carry the reqlog_v payload
)

// KnownLedgerType reports whether this obs version understands the event
// type. Readers must not fail on unknown types — newer emitters may add
// their own — but they count them so tooling can surface the skew.
func KnownLedgerType(t string) bool {
	switch t {
	case LedgerRunStart, LedgerRunEnd, LedgerStep, LedgerPhase,
		LedgerAnalysis, LedgerOutput, LedgerSolve, LedgerPlan, LedgerAlert,
		LedgerReplan, LedgerSolveProg, LedgerReqLog:
		return true
	}
	return false
}

// LedgerEvent is one line of the JSONL run ledger. Times are offsets from
// the log's epoch in microseconds, like the Chrome trace export, so ledgers
// written under an injected clock are deterministic.
type LedgerEvent struct {
	Schema int    `json:"v"`
	Type   string `json:"type"`
	// Name identifies the actor: the kernel for analysis/output events, the
	// phase name for phase events, the application for run_start.
	Name string `json:"name,omitempty"`
	// Step is the 1-based simulation step, 0 for run-level events.
	Step int     `json:"step,omitempty"`
	TS   float64 `json:"ts_us"`            // offset from the ledger epoch
	Dur  float64 `json:"dur_us,omitempty"` // duration, when the event is a span
	// Bytes carries output volume for output events.
	Bytes int64 `json:"bytes,omitempty"`
	// Mem carries a memory reading in bytes, when the emitter has one.
	Mem int64 `json:"mem,omitempty"`
	// Args carries any further numeric payload (solver nodes/pivots,
	// objective, thresholds, ...), keys sorted on encode.
	Args map[string]float64 `json:"args,omitempty"`
}

// EventLog appends schema-versioned LedgerEvents to a writer as JSON lines.
// It is safe for concurrent use and nil-safe: a nil *EventLog drops every
// event, so instrumented code paths need no enable checks. Write errors are
// sticky — the first one is kept and reported by Err/Close, and later
// appends become no-ops.
type EventLog struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	now    func() time.Time
	epoch  time.Time
	err    error
	count  int

	// Rotation state, set only for file-backed ledgers (OpenEventLog).
	// maxBytes caps the active file: once an append pushes written past it,
	// the file is renamed to path+rotateSuffix (replacing any previous
	// generation) and a fresh file is started, so a long-lived daemon holds
	// at most two generations on disk instead of an unbounded ledger.
	path      string
	maxBytes  int64
	written   int64
	rotations int
}

// rotateSuffix is appended to the ledger path for the single retained
// previous generation.
const rotateSuffix = ".1"

// NewEventLog starts a ledger on w with the epoch at the current time.
func NewEventLog(w io.Writer) *EventLog {
	l := &EventLog{w: bufio.NewWriter(w), now: time.Now}
	if c, ok := w.(io.Closer); ok {
		l.closer = c
	}
	l.epoch = l.now()
	return l
}

// OpenEventLog creates (or truncates) a ledger file at path. File-backed
// ledgers support size-capped rotation; see SetMaxBytes and Rotate.
func OpenEventLog(path string) (*EventLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	l := NewEventLog(f)
	l.path = path
	return l, nil
}

// OpenEventLogCapped is OpenEventLog with a size cap already applied: the
// one-call form for long-lived daemons (schedd serve) whose ledgers must
// not grow unboundedly.
func OpenEventLogCapped(path string, maxBytes int64) (*EventLog, error) {
	l, err := OpenEventLog(path)
	if err != nil {
		return nil, err
	}
	if err := l.SetMaxBytes(maxBytes); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// SetMaxBytes arms size-capped rotation: once an append pushes the active
// file past maxBytes, the log rotates (see Rotate). A maxBytes <= 0
// disarms the cap. Only file-backed ledgers (OpenEventLog) can rotate;
// arming any other ledger is an error.
func (l *EventLog) SetMaxBytes(maxBytes int64) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.path == "" && maxBytes > 0 {
		return fmt.Errorf("obs: ledger is not file-backed; size cap needs OpenEventLog")
	}
	l.maxBytes = maxBytes
	return nil
}

// Rotate flushes and closes the active ledger file, renames it to
// path+".1" (replacing the previous generation, so at most two files ever
// exist), and starts a fresh file at path. The epoch is preserved: events
// in the new generation keep timestamps relative to the original open, so
// the two generations concatenate into one coherent timeline. Errors are
// sticky exactly like append errors — a failed rotation wedges the log and
// is reported by Err/Close. Rotating a non-file ledger is an error (not
// sticky: the log itself is still healthy).
func (l *EventLog) Rotate() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.path == "" {
		return fmt.Errorf("obs: ledger is not file-backed; rotation needs OpenEventLog")
	}
	if l.err != nil {
		return l.err
	}
	l.rotateLocked()
	return l.err
}

// Rotations reports how many times the log has rotated.
func (l *EventLog) Rotations() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rotations
}

// rotateLocked performs the rename-and-reopen under l.mu; any failure is
// recorded as the sticky error.
func (l *EventLog) rotateLocked() {
	if err := l.w.Flush(); err != nil {
		l.err = err
		return
	}
	if l.closer != nil {
		if err := l.closer.Close(); err != nil {
			l.err = err
			return
		}
		l.closer = nil
	}
	if err := os.Rename(l.path, l.path+rotateSuffix); err != nil {
		l.err = err
		return
	}
	f, err := os.Create(l.path)
	if err != nil {
		l.err = err
		return
	}
	l.w = bufio.NewWriter(f)
	l.closer = f
	l.written = 0
	l.rotations++
}

// SetClock replaces the log's clock and re-anchors the epoch, exactly like
// Tracer.SetClock; tests use it for byte-stable ledgers.
func (l *EventLog) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
	l.epoch = now()
}

// Append stamps e (schema version and, when unset, the timestamp) and
// writes it as one JSON line.
func (l *EventLog) Append(e LedgerEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	e.Schema = LedgerSchemaVersion
	if e.TS == 0 {
		e.TS = float64(l.now().Sub(l.epoch).Nanoseconds()) / 1e3
	}
	line, err := marshalLedgerEvent(e)
	if err != nil {
		l.err = err
		return
	}
	if _, err := l.w.Write(line); err != nil {
		l.err = err
		return
	}
	if err := l.w.WriteByte('\n'); err != nil {
		l.err = err
		return
	}
	// Flush per line: the ledger is an audit trail, so a crash mid-run must
	// not lose the steps that already completed, and a tailing summarizer
	// sees whole lines only.
	if err := l.w.Flush(); err != nil {
		l.err = err
		return
	}
	l.count++
	l.written += int64(len(line)) + 1
	if l.maxBytes > 0 && l.written >= l.maxBytes {
		l.rotateLocked()
	}
}

// Event appends a span-style event of the given type.
func (l *EventLog) Event(typ, name string, step int, dur time.Duration) {
	l.Append(LedgerEvent{Type: typ, Name: name, Step: step, Dur: float64(dur.Nanoseconds()) / 1e3})
}

// Len returns the number of events appended so far.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Err returns the first write or encode error, if any.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes the ledger and closes the underlying file when the log owns
// one. Close reports the first error seen over the log's lifetime.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	if l.closer != nil {
		if err := l.closer.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.closer = nil
	}
	return l.err
}

// marshalLedgerEvent encodes with sorted Args keys (encoding/json already
// sorts map keys) and no HTML escaping, so ledgers are byte-stable.
func marshalLedgerEvent(e LedgerEvent) ([]byte, error) {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(e); err != nil {
		return nil, err
	}
	return []byte(strings.TrimSuffix(b.String(), "\n")), nil
}

// ErrSchemaTooNew marks a ledger line written under a schema this reader
// does not understand. Lenient readers skip (and count) such lines instead
// of failing, so old tooling keeps working against ledgers from newer code.
var ErrSchemaTooNew = fmt.Errorf("obs: ledger line from a newer schema than v%d", LedgerSchemaVersion)

// ParseLedgerEvent parses one JSONL ledger line. It returns ErrSchemaTooNew
// (possibly wrapped) for lines stamped with a newer schema version, and a
// plain error for malformed JSON or a non-positive schema.
func ParseLedgerEvent(raw []byte) (LedgerEvent, error) {
	var e LedgerEvent
	if err := json.Unmarshal(raw, &e); err != nil {
		return LedgerEvent{}, err
	}
	if e.Schema < 1 {
		return LedgerEvent{}, fmt.Errorf("obs: ledger line missing schema version")
	}
	if e.Schema > LedgerSchemaVersion {
		return LedgerEvent{}, fmt.Errorf("%w (line is v%d)", ErrSchemaTooNew, e.Schema)
	}
	return e, nil
}

// LedgerReadStats counts what a lenient ledger read skipped.
type LedgerReadStats struct {
	Lines        int // non-blank lines scanned
	SkippedNewer int // lines from a newer schema, skipped with a count
}

// ReadLedger parses a JSONL ledger stream. Blank lines are skipped, as are
// lines stamped with a newer schema version (forward compatibility: a new
// emitter must not break old tooling); malformed JSON is an error carrying
// the 1-based line number.
func ReadLedger(r io.Reader) ([]LedgerEvent, error) {
	events, _, err := ReadLedgerStats(r)
	return events, err
}

// ReadLedgerStats is ReadLedger plus the skip counts, for tooling that wants
// to surface a warning when a ledger carries events it cannot interpret.
func ReadLedgerStats(r io.Reader) ([]LedgerEvent, LedgerReadStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []LedgerEvent
	var stats LedgerReadStats
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		stats.Lines++
		e, err := ParseLedgerEvent([]byte(raw))
		if err != nil {
			if errors.Is(err, ErrSchemaTooNew) {
				stats.SkippedNewer++
				continue
			}
			return nil, stats, fmt.Errorf("obs: ledger line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, stats, fmt.Errorf("obs: ledger scan: %w", err)
	}
	return out, stats, nil
}

// ReadLedgerFile parses the ledger at path.
func ReadLedgerFile(path string) ([]LedgerEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLedger(f)
}

// StepTimeline is one simulation step reconstructed from a ledger.
type StepTimeline struct {
	Step     int
	SimUS    float64            // duration of the step event itself
	Analyses map[string]float64 // kernel -> analysis us
	Outputs  map[string]float64 // kernel -> output us
	Bytes    int64              // output bytes across all kernels
}

// LedgerSummary is the reconstruction SummarizeLedger returns.
type LedgerSummary struct {
	App    string // Name of the run_start event, if present
	Steps  []StepTimeline
	Solves []LedgerEvent // solve events in order
	// SolveProg holds the solver flight streams decoded from solveprog
	// events, grouped per solve. Old ledgers leave it nil.
	SolveProg []SolveProgRun
	Runs      int     // run_start events seen
	TotalUS   float64 // summed step durations
	// Unknown counts events whose type this obs version does not understand,
	// by type. They are skipped with a warning rather than failing the
	// summary, so new event families never break old tooling.
	Unknown map[string]int
}

// SummarizeLedger reconstructs per-step timelines from a ledger: one
// StepTimeline per distinct step, ordered by step number, with analysis and
// output durations grouped by kernel name.
func SummarizeLedger(events []LedgerEvent) LedgerSummary {
	var s LedgerSummary
	var progEvents []LedgerEvent
	byStep := map[int]*StepTimeline{}
	stepAt := func(n int) *StepTimeline {
		st, ok := byStep[n]
		if !ok {
			st = &StepTimeline{Step: n, Analyses: map[string]float64{}, Outputs: map[string]float64{}}
			byStep[n] = st
		}
		return st
	}
	for _, e := range events {
		switch e.Type {
		case LedgerRunStart:
			s.Runs++
			if s.App == "" {
				s.App = e.Name
			}
		case LedgerStep:
			st := stepAt(e.Step)
			st.SimUS += e.Dur
			s.TotalUS += e.Dur
		case LedgerAnalysis:
			stepAt(e.Step).Analyses[e.Name] += e.Dur
		case LedgerOutput:
			st := stepAt(e.Step)
			st.Outputs[e.Name] += e.Dur
			st.Bytes += e.Bytes
		case LedgerSolve:
			s.Solves = append(s.Solves, e)
		case LedgerSolveProg:
			progEvents = append(progEvents, e)
		case LedgerPhase, LedgerRunEnd, LedgerPlan, LedgerAlert, LedgerReplan, LedgerReqLog:
			// Understood but not part of the per-step timeline.
		default:
			if s.Unknown == nil {
				s.Unknown = map[string]int{}
			}
			s.Unknown[e.Type]++
		}
	}
	steps := make([]int, 0, len(byStep))
	for n := range byStep {
		steps = append(steps, n)
	}
	sort.Ints(steps)
	for _, n := range steps {
		s.Steps = append(s.Steps, *byStep[n])
	}
	s.SolveProg = GroupSolveProgEvents(progEvents)
	return s
}

// Empty reports whether the summary was built from no events at all.
func (s LedgerSummary) Empty() bool {
	return s.Runs == 0 && len(s.Steps) == 0 && len(s.Solves) == 0 && len(s.SolveProg) == 0
}

// UnknownCount returns the total number of events skipped for carrying an
// unknown type.
func (s LedgerSummary) UnknownCount() int {
	n := 0
	for _, c := range s.Unknown {
		n += c
	}
	return n
}

// writeUnknownWarning prints the counted skip warning, if any events of
// unknown type were seen.
func (s LedgerSummary) writeUnknownWarning(w io.Writer) error {
	if len(s.Unknown) == 0 {
		return nil
	}
	types := make([]string, 0, len(s.Unknown))
	for t := range s.Unknown {
		types = append(types, t)
	}
	sort.Strings(types)
	var parts []string
	for _, t := range types {
		parts = append(parts, fmt.Sprintf("%s×%d", t, s.Unknown[t]))
	}
	_, err := fmt.Fprintf(w, "warning: skipped %d event(s) of unknown type: %s\n",
		s.UnknownCount(), strings.Join(parts, ", "))
	return err
}

// WriteTimeline renders a ledger summary as a per-step text table. An empty
// summary renders a single "no events" line instead of a header-only table.
func (s LedgerSummary) WriteTimeline(w io.Writer) error {
	if err := s.writeUnknownWarning(w); err != nil {
		return err
	}
	if s.Empty() {
		_, err := fmt.Fprintln(w, "ledger: no events")
		return err
	}
	if s.App != "" {
		if _, err := fmt.Fprintf(w, "run: %s (%d run(s), %d step(s))\n", s.App, s.Runs, len(s.Steps)); err != nil {
			return err
		}
	}
	for _, e := range s.Solves {
		if _, err := fmt.Fprintf(w, "solve %-20s nodes=%-6.0f pivots=%-8.0f objective=%g (%.0f us)\n",
			e.Name, e.Args["nodes"], e.Args["pivots"], e.Args["objective"], e.Dur); err != nil {
			return err
		}
	}
	// Flight streams render their gap-closure timelines; ledgers without
	// solveprog events (anything written before the flight recorder) skip
	// this section entirely.
	for _, run := range s.SolveProg {
		if err := WriteGapTimeline(w, run.Name, run.Records); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%6s %12s  %s\n", "step", "sim_us", "kernel activity"); err != nil {
		return err
	}
	for _, st := range s.Steps {
		var parts []string
		names := make([]string, 0, len(st.Analyses))
		for n := range st.Analyses {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s/analyze %.0fus", n, st.Analyses[n]))
		}
		names = names[:0]
		for n := range st.Outputs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s/output %.0fus", n, st.Outputs[n]))
		}
		if _, err := fmt.Fprintf(w, "%6d %12.0f  %s\n", st.Step, st.SimUS, strings.Join(parts, ", ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "total step time: %.0f us\n", s.TotalUS)
	return err
}
