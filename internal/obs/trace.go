package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase identifies the trace_event phase of an Event.
type Phase byte

// Event phases, a subset of the Chrome trace_event vocabulary.
const (
	PhaseComplete Phase = 'X' // a span with a start and a duration
	PhaseInstant  Phase = 'i' // a point event
	PhaseCounter  Phase = 'C' // a sampled counter value
)

// Event is one entry of a recorded timeline. Times are offsets from the
// tracer's epoch, so timelines built under an injected clock are
// deterministic.
type Event struct {
	Name  string
	Cat   string
	Phase Phase
	Track int           // rendered as the tid lane in Chrome/Perfetto
	Start time.Duration // offset from the tracer epoch
	Dur   time.Duration // only for PhaseComplete
	Args  map[string]float64
}

// Tracer records spans and events against a monotonic epoch. The zero value
// is not ready for use; call NewTracer. A nil *Tracer is a valid no-op sink.
type Tracer struct {
	mu         sync.Mutex
	now        func() time.Time
	epoch      time.Time
	events     []Event
	procName   string
	trackNames map[int]string
}

// NewTracer returns a tracer whose epoch is the current wall-clock time.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now}
	t.epoch = t.now()
	return t
}

// SetProcessName names the pid lane in Chrome/Perfetto renderings (emitted
// as a process_name metadata event). The default is "insitu".
func (t *Tracer) SetProcessName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procName = name
}

// SetTrackName names a track; Chrome/Perfetto render it as the tid lane
// label (emitted as a thread_name metadata event). Unnamed tracks keep the
// bare tid.
func (t *Tracer) SetTrackName(track int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.trackNames == nil {
		t.trackNames = make(map[int]string)
	}
	t.trackNames[track] = name
}

// SetClock replaces the tracer's clock and re-anchors the epoch at the
// clock's current reading; tests use it for determinism, exactly like
// perfmodel.Profiler.SetClock.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.epoch = now()
}

// Span is an open interval on the timeline; End closes it and records a
// PhaseComplete event. A nil *Span is a valid no-op.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	track int
	start time.Duration
	args  map[string]float64
	done  bool
}

// Begin opens a span on track 0.
func (t *Tracer) Begin(name, cat string) *Span { return t.BeginOn(0, name, cat) }

// BeginOn opens a span on the given track (Chrome renders each track as one
// tid lane; use distinct tracks for concurrent actors such as staging
// workers).
func (t *Tracer) BeginOn(track int, name, cat string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	start := t.now().Sub(t.epoch)
	t.mu.Unlock()
	return &Span{t: t, name: name, cat: cat, track: track, start: start}
}

// Arg attaches a numeric argument to the span and returns it for chaining.
// After End the span is sealed and Arg is a no-op — the recorded event owns
// the argument map, so late writes must not reach readers of the timeline.
func (s *Span) Arg(key string, v float64) *Span {
	if s == nil || s.done {
		return s
	}
	if s.args == nil {
		s.args = make(map[string]float64)
	}
	s.args[key] = v
	return s
}

// End closes the span and records it. End is idempotent.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	// Hand the argument map over to the recorded event; the span keeps no
	// reference, so a (buggy) post-End Arg cannot race with trace writers.
	args := s.args
	s.args = nil
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.now().Sub(t.epoch)
	t.events = append(t.events, Event{
		Name:  s.name,
		Cat:   s.cat,
		Phase: PhaseComplete,
		Track: s.track,
		Start: s.start,
		Dur:   end - s.start,
		Args:  args,
	})
}

// Instant records a point event on track 0.
func (t *Tracer) Instant(name, cat string, args map[string]float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{
		Name:  name,
		Cat:   cat,
		Phase: PhaseInstant,
		Start: t.now().Sub(t.epoch),
		Args:  args,
	})
}

// Counter records a sampled counter value; Chrome renders a stacked area
// chart per counter name.
func (t *Tracer) Counter(name string, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{
		Name:  name,
		Cat:   "counter",
		Phase: PhaseCounter,
		Start: t.now().Sub(t.epoch),
		Args:  map[string]float64{"value": value},
	})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded timeline ordered by start time
// (ties broken by longer-span-first so parents sort before children).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sortEvents(out)
	return out
}

func sortEvents(out []Event) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Dur > out[j].Dur
	})
}

// micros renders a duration as trace_event microseconds (a JSON double).
func micros(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e3)
}

// WriteChromeTrace emits the timeline in Chrome trace_event "JSON object
// format": {"traceEvents": [...]}. Load it in chrome://tracing or Perfetto.
// Event ordering and argument key ordering are deterministic. The stream
// opens with metadata events (a process_name for the pid lane, defaulting to
// "insitu", and a thread_name per track named via SetTrackName) so Perfetto
// shows labelled lanes instead of bare pids.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	// One critical section for names, tracks, and events: a concurrent
	// SetTrackName or span End between separate snapshots could otherwise
	// produce a stream whose events reference lanes with no metadata.
	t.mu.Lock()
	proc := t.procName
	tracks := make([]int, 0, len(t.trackNames))
	for id := range t.trackNames {
		tracks = append(tracks, id)
	}
	sort.Ints(tracks)
	names := make([]string, len(tracks))
	for i, id := range tracks {
		names[i] = t.trackNames[id]
	}
	events := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sortEvents(events)
	if proc == "" {
		proc = "insitu"
	}
	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	procJSON, err := json.Marshal(proc)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, `{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":%s}}`, procJSON)
	for i, id := range tracks {
		nameJSON, err := json.Marshal(names[i])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, `,{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`, id, nameJSON)
	}
	for _, e := range events {
		b.WriteByte(',')
		nameJSON, err := json.Marshal(e.Name)
		if err != nil {
			return err
		}
		catJSON, err := json.Marshal(e.Cat)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, `{"name":%s,"cat":%s,"ph":"%c","pid":1,"tid":%d,"ts":%s`,
			nameJSON, catJSON, e.Phase, e.Track, micros(e.Start))
		if e.Phase == PhaseComplete {
			fmt.Fprintf(&b, `,"dur":%s`, micros(e.Dur))
		}
		if e.Phase == PhaseInstant {
			b.WriteString(`,"s":"t"`)
		}
		if len(e.Args) > 0 {
			b.WriteString(`,"args":{`)
			keys := make([]string, 0, len(e.Args))
			for k := range e.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for ki, k := range keys {
				if ki > 0 {
					b.WriteByte(',')
				}
				keyJSON, err := json.Marshal(k)
				if err != nil {
					return err
				}
				fmt.Fprintf(&b, `%s:%g`, keyJSON, e.Args[k])
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	}
	b.WriteString("]}\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the timeline as a plain CSV with a header row:
// track,phase,cat,name,start_us,dur_us. Args are omitted.
func (t *Tracer) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "track,phase,cat,name,start_us,dur_us\n"); err != nil {
		return err
	}
	for _, e := range t.Events() {
		name := strings.ReplaceAll(e.Name, ",", ";")
		cat := strings.ReplaceAll(e.Cat, ",", ";")
		if _, err := fmt.Fprintf(w, "%d,%c,%s,%s,%s,%s\n",
			e.Track, e.Phase, cat, name, micros(e.Start), micros(e.Dur)); err != nil {
			return err
		}
	}
	return nil
}
