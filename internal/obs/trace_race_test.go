package obs

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

// TestArgAfterEndSealed pins the span hand-off contract: End transfers the
// argument map to the recorded event, so a late Arg must not mutate what a
// trace writer reads.
func TestArgAfterEndSealed(t *testing.T) {
	tr := NewTracer()
	s := tr.Begin("solve", "milp").Arg("nodes", 3)
	s.End()
	s.Arg("late", 99) // must be a no-op on the sealed span
	s.End()           // idempotent
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("%d events recorded, want 1", len(events))
	}
	if _, ok := events[0].Args["late"]; ok {
		t.Fatal("post-End Arg reached the recorded event")
	}
	if events[0].Args["nodes"] != 3 {
		t.Fatalf("args = %v", events[0].Args)
	}
}

// TestTraceConcurrentWriters drives live spans, track renames, and counters
// against concurrent trace exports. Run under -race (the CI test job does for
// this package) it pins that WriteChromeTrace/WriteTraceFile snapshot state
// in one critical section and that recorded events own their argument maps.
func TestTraceConcurrentWriters(t *testing.T) {
	tr := NewTracer()
	path := filepath.Join(t.TempDir(), "trace.json")
	var wg sync.WaitGroup

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.SetTrackName(g, "worker "+strconv.Itoa(g))
				s := tr.BeginOn(g, "span", "test").Arg("i", float64(i))
				s.Arg("g", float64(g))
				s.End()
				s.Arg("late", 1) // sealed: must not race with the writers below
				tr.Counter("open", float64(i))
				tr.Instant("tick", "test", map[string]float64{"i": float64(i)})
			}
		}(g)
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := tr.WriteChromeTrace(io.Discard); err != nil {
					t.Errorf("WriteChromeTrace: %v", err)
					return
				}
				if err := tr.WriteCSV(io.Discard); err != nil {
					t.Errorf("WriteCSV: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := WriteTraceFile(path, tr); err != nil {
				t.Errorf("WriteTraceFile: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if tr.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
}
