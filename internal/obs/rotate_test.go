package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEventLogRotationCap writes events through a tightly capped ledger and
// checks the rotation contract: at most two generations on disk, both
// parseable, the total appended count preserved across them plus whatever
// earlier generations were dropped, and the epoch shared (timestamps keep
// rising across the boundary).
func TestEventLogRotationCap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	l, err := OpenEventLogCapped(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		l.Append(LedgerEvent{Type: LedgerStep, Step: i + 1, Dur: 100})
	}
	if err := l.Err(); err != nil {
		t.Fatalf("ledger error: %v", err)
	}
	if l.Rotations() == 0 {
		t.Fatal("50 events through a 256-byte cap should have rotated")
	}
	// The 50th append may have landed exactly on a rotation boundary, leaving
	// the fresh generation empty; one more event pins both files non-empty.
	l.Append(LedgerEvent{Type: LedgerStep, Step: 51, Dur: 100})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	cur, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatalf("active generation unreadable: %v", err)
	}
	prev, err := ReadLedgerFile(path + ".1")
	if err != nil {
		t.Fatalf("previous generation unreadable: %v", err)
	}
	if len(cur) == 0 || len(prev) == 0 {
		t.Fatalf("want events in both generations, got %d current, %d previous", len(cur), len(prev))
	}
	fi, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	// One event may straddle the cap, so allow a line of slack.
	if fi.Size() > 256+128 {
		t.Fatalf("rotated generation is %d bytes, far past the 256-byte cap", fi.Size())
	}
	// The retained files hold contiguous suffixes of the stream: the last
	// previous-generation step immediately precedes the first current one.
	if prev[len(prev)-1].Step+1 != cur[0].Step {
		t.Fatalf("generations not contiguous: previous ends at step %d, current starts at %d",
			prev[len(prev)-1].Step, cur[0].Step)
	}
	if cur[len(cur)-1].Step != 51 {
		t.Fatalf("active generation should end at step 51, got %d", cur[len(cur)-1].Step)
	}
	// Shared epoch: timestamps rise monotonically across the boundary.
	if cur[0].TS < prev[len(prev)-1].TS {
		t.Fatalf("epoch reset across rotation: %.0f then %.0f", prev[len(prev)-1].TS, cur[0].TS)
	}
}

// TestEventLogExplicitRotate exercises the on-demand Rotate call.
func TestEventLogExplicitRotate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(LedgerEvent{Type: LedgerRunStart, Name: "app"})
	if err := l.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	l.Append(LedgerEvent{Type: LedgerRunEnd})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Rotations(); got != 1 {
		t.Fatalf("rotations = %d, want 1", got)
	}
	prev, err := ReadLedgerFile(path + ".1")
	if err != nil || len(prev) != 1 || prev[0].Type != LedgerRunStart {
		t.Fatalf("previous generation = %v, %v", prev, err)
	}
	cur, err := ReadLedgerFile(path)
	if err != nil || len(cur) != 1 || cur[0].Type != LedgerRunEnd {
		t.Fatalf("current generation = %v, %v", cur, err)
	}
}

// TestEventLogRotateNotFileBacked: rotation needs a path; in-memory ledgers
// refuse without wedging the log.
func TestEventLogRotateNotFileBacked(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	if err := l.Rotate(); err == nil {
		t.Fatal("rotating an in-memory ledger should fail")
	}
	if err := l.SetMaxBytes(1024); err == nil {
		t.Fatal("capping an in-memory ledger should fail")
	}
	l.Append(LedgerEvent{Type: LedgerStep, Step: 1})
	if err := l.Err(); err != nil {
		t.Fatalf("refused rotation must not be sticky, got %v", err)
	}
	if l.Len() != 1 {
		t.Fatalf("log should still accept events, len = %d", l.Len())
	}
	if !strings.Contains(buf.String(), `"type":"step"`) {
		t.Fatalf("event not written: %q", buf.String())
	}
}

// TestEventLogRotationStickyError wedges the rename target and checks the
// rotation failure is sticky: later appends become no-ops and Close reports
// the first error, matching the append-error contract.
func TestEventLogRotationStickyError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "run.jsonl")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	l, err := OpenEventLogCapped(path, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Removing the parent directory makes the rename-and-reopen fail.
	if err := os.RemoveAll(filepath.Dir(path)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l.Append(LedgerEvent{Type: LedgerStep, Step: i + 1})
	}
	if l.Err() == nil {
		t.Fatal("rotation into a removed directory should stick an error")
	}
	before := l.Len()
	l.Append(LedgerEvent{Type: LedgerStep, Step: 99})
	if l.Len() != before {
		t.Fatal("appends after a sticky error must be no-ops")
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close must report the sticky rotation error")
	}
}
