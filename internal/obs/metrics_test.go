package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs_total", nil)
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if c.Value() != 3 {
		t.Fatalf("counter = %g", c.Value())
	}
	g := r.Gauge("backlog_bytes", nil)
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Fatalf("gauge = %g", g.Value())
	}
	h := r.Histogram("step_seconds", []float64{0.1, 1}, nil)
	for _, v := range []float64{0.0625, 0.5, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 6.0625 {
		t.Fatalf("hist count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestRegistryLabelsAndReuse(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("runs_total", Labels{"kernel": "rdf"})
	b := r.Counter("runs_total", Labels{"kernel": "rdf"})
	if a != b {
		t.Fatal("same name+labels must return the same handle")
	}
	other := r.Counter("runs_total", Labels{"kernel": "msd"})
	if a == other {
		t.Fatal("distinct labels must return distinct handles")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("runs_total", nil)
}

func TestPrometheusByteStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("comm_messages_total", nil).Add(12)
	r.Counter("analyses_total", Labels{"kernel": "rdf"}).Inc()
	r.Counter("analyses_total", Labels{"kernel": "msd"}).Add(3)
	r.Gauge("burstbuffer_backlog_bytes", nil).Set(1024)
	h := r.Histogram("step_seconds", []float64{0.1, 1}, Labels{"app": "mdsim"})
	h.Observe(0.0625)
	h.Observe(2)

	var buf1, buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("prometheus export not byte-stable")
	}
	// A multi-series family gets exactly one TYPE header.
	want := `# TYPE analyses_total counter
analyses_total{kernel="msd"} 3
analyses_total{kernel="rdf"} 1
# TYPE burstbuffer_backlog_bytes gauge
burstbuffer_backlog_bytes 1024
# TYPE comm_messages_total counter
comm_messages_total 12
# TYPE step_seconds histogram
step_seconds_bucket{app="mdsim",le="0.1"} 1
step_seconds_bucket{app="mdsim",le="1"} 1
step_seconds_bucket{app="mdsim",le="+Inf"} 2
step_seconds_sum{app="mdsim"} 2.0625
step_seconds_count{app="mdsim"} 2
`
	if got := buf1.String(); got != want {
		t.Fatalf("prometheus text:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("n", nil).Inc()
	r.Histogram("h", []float64{1}, nil).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap []Metric
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid snapshot JSON: %v\n%s", err, buf.String())
	}
	if len(snap) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Name != "h" || snap[0].Count != 1 || len(snap[0].Buckets) != 2 {
		t.Fatalf("histogram snapshot = %+v", snap[0])
	}
	if !math.IsInf(r.Snapshot()[0].Buckets[1].UpperBound, 1) {
		t.Fatal("last bucket must be +Inf")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops_total", nil)
			h := r.Histogram("lat", []float64{10, 100}, nil)
			ga := r.Gauge("level", nil)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 150))
				ga.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total", nil).Value(); got != 8000 {
		t.Fatalf("counter = %g, want 8000", got)
	}
	if got := r.Histogram("lat", nil, nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("level", nil).Value(); got != 8000 {
		t.Fatalf("gauge = %g, want 8000", got)
	}
}

func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	r.Counter("a", nil).Inc()
	r.Gauge("b", nil).Set(1)
	r.Histogram("c", nil, nil).Observe(1)
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry export = %q", buf.String())
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil registry JSON invalid")
	}
}

func TestLabelKeyCanonical(t *testing.T) {
	if got := labelKey(Labels{"b": "2", "a": "1"}); got != `{a="1",b="2"}` {
		t.Fatalf("labelKey = %q", got)
	}
	if got := labelKey(nil); got != "" {
		t.Fatalf("empty labelKey = %q", got)
	}
}

// TestBucketQuantile drives the interpolation against known distributions.
func TestBucketQuantile(t *testing.T) {
	cases := []struct {
		name    string
		buckets []float64 // upper bounds
		obs     []float64
		q       float64
		want    float64
	}{
		// 100 uniform samples in (0,10]: ranks interpolate linearly.
		{"uniform-p50", []float64{10}, ramp(100, 0.1), 0.50, 5.0},
		{"uniform-p90", []float64{10}, ramp(100, 0.1), 0.90, 9.0},
		{"uniform-p99", []float64{10}, ramp(100, 0.1), 0.99, 9.9},
		// Two buckets, 10 samples below 1 and 10 in (1,2]: p50 at the seam.
		{"two-buckets-p50", []float64{1, 2}, append(ramp(10, 0.1), ramp2(10, 1, 0.1)...), 0.50, 1.0},
		{"two-buckets-p75", []float64{1, 2}, append(ramp(10, 0.1), ramp2(10, 1, 0.1)...), 0.75, 1.5},
		// First bucket interpolates from zero.
		{"first-bucket", []float64{4, 8}, ramp(8, 0.5), 0.25, 1.0},
		// Rank in the +Inf bucket clamps to the highest finite bound.
		{"inf-clamp", []float64{1}, []float64{5, 6, 7, 8}, 0.90, 1.0},
		// A single sample interpolates to the middle of its (2,4] bucket.
		{"single", []float64{1, 2, 4}, []float64{3}, 0.50, 3.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.Histogram("h", tc.buckets, nil)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			m := r.Snapshot()[0]
			got := m.Quantile(tc.q)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("q%.2f = %g, want %g (buckets %+v)", tc.q, got, tc.want, m.Buckets)
			}
			if m.Quantiles == nil {
				t.Fatal("snapshot did not populate Quantiles")
			}
			if p50 := m.Quantiles["p50"]; math.Abs(p50-m.Quantile(0.5)) > 1e-12 {
				t.Fatalf("Quantiles[p50]=%g, Quantile(0.5)=%g", p50, m.Quantile(0.5))
			}
		})
	}
}

// ramp returns n values step, 2*step, ..., n*step.
func ramp(n int, step float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i+1) * step
	}
	return out
}

// ramp2 is ramp offset by base.
func ramp2(n int, base, step float64) []float64 {
	out := ramp(n, step)
	for i := range out {
		out[i] += base
	}
	return out
}

// TestQuantileEdgeCases covers empty histograms and invalid q.
func TestQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1}, nil) // registered, never observed
	m := r.Snapshot()[0]
	if m.Quantiles != nil {
		t.Fatalf("empty histogram grew quantiles: %v", m.Quantiles)
	}
	if !math.IsNaN(m.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	if !math.IsNaN(m.Quantile(0)) || !math.IsNaN(m.Quantile(1.5)) {
		t.Fatal("out-of-range q should be NaN")
	}
	if !math.IsNaN((Metric{}).Quantile(0.5)) {
		t.Fatal("non-histogram metric quantile should be NaN")
	}
	// JSON snapshot of a populated histogram carries the quantiles.
	r.Histogram("h", []float64{1}, nil).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap []Metric
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap[0].Quantiles["p99"] == 0 {
		t.Fatalf("JSON snapshot lost quantiles: %+v", snap[0])
	}
}
