// Package iosim models the storage side of the simulation-analysis workflow:
// parallel writes of simulation/analysis output and reads for
// post-processing. Targets carry an aggregate bandwidth and a per-operation
// latency; WriteTime/ReadTime convert data volumes to time the way the
// paper's ot = om/bw does. A faster NVRAM tier reproduces the paper's
// burst-buffer discussion (§1, §5.3.5): moving output to a higher-bandwidth
// resource shrinks ot and buys more in-situ analyses.
package iosim

import (
	"fmt"
	"time"
)

// Target is a storage tier reachable from the simulation site.
type Target struct {
	Name        string
	BytesPerSec float64       // aggregate sequential bandwidth
	Latency     time.Duration // per-operation latency (metadata, seek)
	// MaxWriters caps how many concurrent writers can share the aggregate
	// bandwidth before it saturates (0 = unlimited, bandwidth is aggregate).
	MaxWriters int
}

// GPFS returns a Mira-like GPFS file system: 240 GB/s peak aggregate
// bandwidth; sustained application bandwidth is a configurable fraction of
// peak (the paper's rhodopsin runs sustain ~0.45 GB/s per 91 GB output at
// 200.6 s, i.e. far below peak because of contention and small I/O).
func GPFS() *Target {
	return &Target{Name: "GPFS", BytesPerSec: 240e9, Latency: 10 * time.Millisecond}
}

// NVRAM returns a node-local burst-buffer tier with much higher effective
// bandwidth and lower latency than the parallel file system.
func NVRAM() *Target {
	return &Target{Name: "NVRAM", BytesPerSec: 1.2e12, Latency: 50 * time.Microsecond}
}

// Scaled returns a copy of the target with bandwidth multiplied by f,
// used for sensitivity sweeps (e.g. halving effective bandwidth).
func (t *Target) Scaled(f float64) *Target {
	cp := *t
	cp.Name = fmt.Sprintf("%s x%.3g", t.Name, f)
	cp.BytesPerSec *= f
	return &cp
}

// WriteTime returns the modeled time for `writers` concurrent ranks to write
// `bytes` in aggregate.
func (t *Target) WriteTime(bytes int64, writers int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	bw := t.BytesPerSec
	if t.MaxWriters > 0 && writers > 0 && writers < t.MaxWriters {
		// Below saturation each writer gets a proportional share.
		bw = bw * float64(writers) / float64(t.MaxWriters)
	}
	sec := float64(bytes) / bw
	return t.Latency + time.Duration(sec*float64(time.Second))
}

// ReadTime returns the modeled time to read `bytes` back (post-processing).
// Reads of simulation trajectories are typically serial or low-parallelism,
// which is exactly the bottleneck Table 4 quantifies.
func (t *Target) ReadTime(bytes int64, readers int) time.Duration {
	return t.WriteTime(bytes, readers)
}

// EffectiveBandwidth reports the bandwidth (bytes/s) realized when moving
// `bytes` with the per-operation latency included.
func (t *Target) EffectiveBandwidth(bytes int64, writers int) float64 {
	d := t.WriteTime(bytes, writers)
	if d <= 0 {
		return t.BytesPerSec
	}
	return float64(bytes) / d.Seconds()
}

// SustainedGPFS returns a GPFS target whose aggregate bandwidth is derated to
// the sustained application-visible value. The paper's 1B-atom rhodopsin run
// writes 91 GB per output step in about 20 s of wall time per step at the
// default frequency (200.6 s for 10 steps), i.e. ~4.5 GB/s sustained.
func SustainedGPFS() *Target {
	return &Target{Name: "GPFS (sustained)", BytesPerSec: 91e9 / 20.06, Latency: 10 * time.Millisecond}
}
