package iosim_test

import (
	"fmt"
	"time"

	"insitu/internal/iosim"
)

// The ot = om/bw substitution of §3.2: one rhodopsin output step is 91 GB;
// on the sustained GPFS bandwidth it costs ~20 s, the per-step share of the
// paper's 200.6 s total.
func ExampleTarget_WriteTime() {
	gpfs := iosim.SustainedGPFS()
	fmt.Printf("%.1f s\n", gpfs.WriteTime(91e9, 32768).Seconds())
	// Output:
	// 20.1 s
}

// Redirecting the same outputs to an NVRAM burst buffer makes them almost
// free as long as the drain keeps up — Table 7's what-if.
func ExampleBurstBuffer_SustainedOutputTime() {
	bb := iosim.NewBurstBuffer(2 << 40)
	total := bb.SustainedOutputTime(91<<30, 10, 500*time.Second, 32768)
	fmt.Printf("under a second per output: %v\n", total/10 < time.Second)
	// Output:
	// under a second per output: true
}
