package iosim

import (
	"math"
	"testing"
	"time"
)

func TestWriteTimeLinearInBytes(t *testing.T) {
	g := GPFS()
	t1 := g.WriteTime(240e9, 0) // 1 second of payload + latency
	want := time.Second + g.Latency
	if d := t1 - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("write time = %v, want ~%v", t1, want)
	}
	if g.WriteTime(0, 0) != 0 {
		t.Fatal("zero bytes must cost zero")
	}
	if g.WriteTime(-1, 0) != 0 {
		t.Fatal("negative bytes must cost zero")
	}
}

func TestNVRAMFasterThanGPFS(t *testing.T) {
	bytes := int64(91 << 30)
	if NVRAM().WriteTime(bytes, 0) >= GPFS().WriteTime(bytes, 0) {
		t.Fatal("NVRAM must beat GPFS")
	}
}

func TestScaled(t *testing.T) {
	g := SustainedGPFS()
	half := g.Scaled(0.5)
	bytes := int64(1 << 30)
	tFull := g.WriteTime(bytes, 0) - g.Latency
	tHalf := half.WriteTime(bytes, 0) - half.Latency
	ratio := float64(tHalf) / float64(tFull)
	if math.Abs(ratio-2) > 1e-6 {
		t.Fatalf("halving bandwidth should double time, ratio = %g", ratio)
	}
	if half.Name == g.Name {
		t.Fatal("scaled target should be renamed")
	}
}

func TestSustainedGPFSMatchesPaper(t *testing.T) {
	// The paper's 1B-atom rhodopsin run: 91 GB per output step, 10 steps in
	// 200.6 s -> ~20.06 s per write.
	s := SustainedGPFS()
	got := s.WriteTime(91e9, 32768).Seconds()
	if math.Abs(got-20.06) > 0.2 {
		t.Fatalf("91 GB write = %.2fs, want ~20.06s", got)
	}
}

func TestWriterScaling(t *testing.T) {
	tgt := &Target{Name: "x", BytesPerSec: 100e9, MaxWriters: 100}
	few := tgt.WriteTime(1e9, 10)   // 10% of writers -> 10% of bandwidth
	many := tgt.WriteTime(1e9, 100) // saturated
	if few <= many {
		t.Fatalf("fewer writers must be slower below saturation: %v vs %v", few, many)
	}
	over := tgt.WriteTime(1e9, 1000) // beyond saturation: aggregate bandwidth
	if over != many {
		t.Fatalf("oversaturated writers should see aggregate bandwidth: %v vs %v", over, many)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	g := GPFS()
	bw := g.EffectiveBandwidth(240e9, 0)
	if bw >= g.BytesPerSec {
		t.Fatal("effective bandwidth must be below peak due to latency")
	}
	if bw < g.BytesPerSec*0.9 {
		t.Fatalf("large transfer should approach peak, got %g", bw)
	}
	if NVRAM().EffectiveBandwidth(0, 0) != NVRAM().BytesPerSec {
		t.Fatal("zero-byte effective bandwidth should return peak")
	}
}

func TestReadTimeEqualsWriteTime(t *testing.T) {
	g := GPFS()
	if g.ReadTime(12345, 4) != g.WriteTime(12345, 4) {
		t.Fatal("symmetric model expected")
	}
}
