package iosim

import (
	"time"

	"insitu/internal/obs"
)

// BurstBuffer models the NVRAM tier the paper anticipates between compute
// nodes and the file system (§1, §5.3.5): writes land in fast NVRAM and
// drain asynchronously to the backing store. As long as the drain keeps up
// with the output cadence, the simulation only sees the NVRAM write time —
// which is how "selecting a different resource for storing output" buys
// more in-situ analyses in Table 7. When outputs arrive faster than the
// backing store drains, the backlog causes backpressure and the visible
// write time degrades toward the backing store's.
type BurstBuffer struct {
	Front *Target // fast tier (NVRAM)
	Back  *Target // backing store (GPFS)
	// CapacityBytes is the NVRAM capacity; a write that does not fit after
	// draining stalls until space frees up.
	CapacityBytes int64

	backlog int64 // bytes still to drain

	// Telemetry handles resolved by Instrument; nil-safe no-ops otherwise.
	gBacklog *obs.Gauge
	mWrites  *obs.Counter
	mBytes   *obs.Counter
	mStall   *obs.Counter
}

// NewBurstBuffer builds an NVRAM-over-GPFS buffer with the given capacity.
func NewBurstBuffer(capacity int64) *BurstBuffer {
	return &BurstBuffer{Front: NVRAM(), Back: GPFS(), CapacityBytes: capacity}
}

// Backlog returns the bytes currently waiting to drain.
func (b *BurstBuffer) Backlog() int64 { return b.backlog }

// Instrument registers the buffer's telemetry with reg: the
// iosim_bb_backlog_bytes gauge tracks the undrained backlog after every
// Write/Reset, and counters record writes, bytes written, and stall seconds.
func (b *BurstBuffer) Instrument(reg *obs.Registry) {
	b.gBacklog = reg.Gauge("iosim_bb_backlog_bytes", nil)
	b.mWrites = reg.Counter("iosim_bb_writes_total", nil)
	b.mBytes = reg.Counter("iosim_bb_write_bytes_total", nil)
	b.mStall = reg.Counter("iosim_bb_stall_seconds_total", nil)
}

// Write models an output of `bytes` issued `sinceLast` after the previous
// one and returns the time visible to the simulation. The elapsed interval
// drains the backlog at the backing store's bandwidth first; if the new
// write does not fit in the remaining capacity, the writer stalls for the
// additional drain time.
func (b *BurstBuffer) Write(bytes int64, sinceLast time.Duration, writers int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	// Drain during the elapsed interval.
	drained := int64(sinceLast.Seconds() * b.Back.BytesPerSec)
	if drained >= b.backlog {
		b.backlog = 0
	} else {
		b.backlog -= drained
	}

	visible := b.Front.WriteTime(bytes, writers)
	// Stall if the write does not fit until enough backlog drains.
	if b.CapacityBytes > 0 && b.backlog+bytes > b.CapacityBytes {
		excess := b.backlog + bytes - b.CapacityBytes
		stall := time.Duration(float64(excess) / b.Back.BytesPerSec * float64(time.Second))
		visible += stall
		b.mStall.Add(stall.Seconds())
		b.backlog -= excess
		if b.backlog < 0 {
			b.backlog = 0
		}
	}
	b.backlog += bytes
	b.mWrites.Inc()
	b.mBytes.Add(float64(bytes))
	b.gBacklog.Set(float64(b.backlog))
	return visible
}

// Reset clears the backlog.
func (b *BurstBuffer) Reset() {
	b.backlog = 0
	b.gBacklog.Set(0)
}

// SustainedOutputTime models `count` periodic outputs of `bytes` each,
// spaced `interval` apart, and returns the total visible write time — the
// quantity a Table-7 style planner would subtract from the run's output
// budget when moving output from GPFS to NVRAM.
func (b *BurstBuffer) SustainedOutputTime(bytes int64, count int, interval time.Duration, writers int) time.Duration {
	b.Reset()
	var total time.Duration
	for i := 0; i < count; i++ {
		since := interval
		if i == 0 {
			since = 0
		}
		total += b.Write(bytes, since, writers)
	}
	return total
}
