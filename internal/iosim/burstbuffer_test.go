package iosim

import (
	"testing"
	"time"
)

func TestBurstBufferFastWhenDrainKeepsUp(t *testing.T) {
	bb := NewBurstBuffer(1 << 40)
	bytes := int64(91) << 30
	// Outputs every 500 s: GPFS (240 GB/s peak here) drains 91 GB easily.
	total := bb.SustainedOutputTime(bytes, 10, 500*time.Second, 32768)
	direct := GPFS().WriteTime(bytes, 32768) * 10
	if total >= direct {
		t.Fatalf("burst buffer (%v) should beat direct GPFS (%v)", total, direct)
	}
	perWrite := total / 10
	nvram := NVRAM().WriteTime(bytes, 32768)
	if perWrite > 2*nvram {
		t.Fatalf("per-write %v should be near NVRAM speed %v", perWrite, nvram)
	}
}

func TestBurstBufferBackpressure(t *testing.T) {
	bb := NewBurstBuffer(60 << 30)
	bb.Back = &Target{Name: "slow", BytesPerSec: 1e9} // 1 GB/s drain
	bytes := int64(50) << 30
	// Back-to-back writes: the second cannot fit until the first drains.
	first := bb.Write(bytes, 0, 1)
	second := bb.Write(bytes, time.Second, 1)
	third := bb.Write(bytes, time.Second, 1)
	if second <= first {
		t.Fatalf("backpressure missing: first %v, second %v", first, second)
	}
	if third < second/2 {
		t.Fatalf("sustained backpressure should persist: %v then %v", second, third)
	}
	if bb.Backlog() <= 0 {
		t.Fatal("backlog should be nonzero under pressure")
	}
}

func TestBurstBufferDrainsOverTime(t *testing.T) {
	bb := NewBurstBuffer(1 << 40)
	bb.Write(10<<30, 0, 1)
	if bb.Backlog() != 10<<30 {
		t.Fatalf("backlog = %d", bb.Backlog())
	}
	// A long quiet interval drains everything.
	bb.Write(1<<20, time.Hour, 1)
	if bb.Backlog() != 1<<20 {
		t.Fatalf("backlog after drain = %d, want just the new write", bb.Backlog())
	}
	bb.Reset()
	if bb.Backlog() != 0 {
		t.Fatal("reset failed")
	}
}

func TestBurstBufferZeroBytes(t *testing.T) {
	bb := NewBurstBuffer(1 << 30)
	if bb.Write(0, 0, 1) != 0 {
		t.Fatal("zero write must be free")
	}
}
