package iosim

import (
	"testing"
	"time"

	"insitu/internal/obs"
)

func TestBurstBufferFastWhenDrainKeepsUp(t *testing.T) {
	bb := NewBurstBuffer(1 << 40)
	bytes := int64(91) << 30
	// Outputs every 500 s: GPFS (240 GB/s peak here) drains 91 GB easily.
	total := bb.SustainedOutputTime(bytes, 10, 500*time.Second, 32768)
	direct := GPFS().WriteTime(bytes, 32768) * 10
	if total >= direct {
		t.Fatalf("burst buffer (%v) should beat direct GPFS (%v)", total, direct)
	}
	perWrite := total / 10
	nvram := NVRAM().WriteTime(bytes, 32768)
	if perWrite > 2*nvram {
		t.Fatalf("per-write %v should be near NVRAM speed %v", perWrite, nvram)
	}
}

func TestBurstBufferBackpressure(t *testing.T) {
	bb := NewBurstBuffer(60 << 30)
	bb.Back = &Target{Name: "slow", BytesPerSec: 1e9} // 1 GB/s drain
	bytes := int64(50) << 30
	// Back-to-back writes: the second cannot fit until the first drains.
	first := bb.Write(bytes, 0, 1)
	second := bb.Write(bytes, time.Second, 1)
	third := bb.Write(bytes, time.Second, 1)
	if second <= first {
		t.Fatalf("backpressure missing: first %v, second %v", first, second)
	}
	if third < second/2 {
		t.Fatalf("sustained backpressure should persist: %v then %v", second, third)
	}
	if bb.Backlog() <= 0 {
		t.Fatal("backlog should be nonzero under pressure")
	}
}

func TestBurstBufferDrainsOverTime(t *testing.T) {
	bb := NewBurstBuffer(1 << 40)
	bb.Write(10<<30, 0, 1)
	if bb.Backlog() != 10<<30 {
		t.Fatalf("backlog = %d", bb.Backlog())
	}
	// A long quiet interval drains everything.
	bb.Write(1<<20, time.Hour, 1)
	if bb.Backlog() != 1<<20 {
		t.Fatalf("backlog after drain = %d, want just the new write", bb.Backlog())
	}
	bb.Reset()
	if bb.Backlog() != 0 {
		t.Fatal("reset failed")
	}
}

func TestBurstBufferZeroBytes(t *testing.T) {
	bb := NewBurstBuffer(1 << 30)
	if bb.Write(0, 0, 1) != 0 {
		t.Fatal("zero write must be free")
	}
}

func TestBurstBufferInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	bb := NewBurstBuffer(1 << 30)
	bb.Instrument(reg)
	bb.Write(100<<20, 0, 128)
	bb.Write(200<<20, time.Millisecond, 128)

	get := func(name string) float64 {
		for _, m := range reg.Snapshot() {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("metric %s not found", name)
		return 0
	}
	if v := get("iosim_bb_writes_total"); v != 2 {
		t.Errorf("writes = %v, want 2", v)
	}
	if v := get("iosim_bb_write_bytes_total"); v != float64(300<<20) {
		t.Errorf("write bytes = %v, want %v", v, float64(300<<20))
	}
	if v := get("iosim_bb_backlog_bytes"); v != float64(bb.Backlog()) {
		t.Errorf("backlog gauge = %v, want %v", v, bb.Backlog())
	}
	if v := get("iosim_bb_backlog_bytes"); v <= 0 {
		t.Errorf("backlog gauge = %v, want > 0 (drain slower than writes)", v)
	}
	bb.Reset()
	if v := get("iosim_bb_backlog_bytes"); v != 0 {
		t.Errorf("backlog gauge after Reset = %v, want 0", v)
	}
}

func TestBurstBufferStallCounter(t *testing.T) {
	reg := obs.NewRegistry()
	bb := NewBurstBuffer(10 << 20) // tiny capacity forces a stall
	bb.Instrument(reg)
	bb.Write(8<<20, 0, 128)
	bb.Write(8<<20, time.Microsecond, 128)
	var stall float64
	for _, m := range reg.Snapshot() {
		if m.Name == "iosim_bb_stall_seconds_total" {
			stall = m.Value
		}
	}
	if stall <= 0 {
		t.Errorf("stall seconds = %v, want > 0", stall)
	}
}
