package lp

import "math"

// dualPivTol is the minimum pivot magnitude the dual simplex accepts;
// smaller pivots are numerically risky, and bailing out just costs one cold
// solve.
const dualPivTol = 1e-7

// applyBounds installs new original-space bounds into a previously solved
// state. Basic columns just get the new bounds; a nonbasic column keeps its
// resting side unless that side no longer exists (an upper bound relaxed to
// +Inf moves the variable to its lower bound). The basic values are
// recomputed from scratch by the caller, so no delta propagation is needed.
func (rv *revised) applyBounds(lower, upper []float64) {
	for j := 0; j < rv.cs.nOrig; j++ {
		rv.lo[j], rv.up[j] = lower[j], upper[j]
		if !rv.inBasis[j] && rv.atUpper[j] && math.IsInf(upper[j], 1) {
			rv.atUpper[j] = false
		}
	}
}

// resolve warm-starts the previously solved state under new bounds: install
// the bounds, recompute the basic values with one FTRAN, restore primal
// feasibility with the bounded-variable dual simplex, then let the primal
// simplex finish (usually zero pivots). The boolean reports whether the warm
// path produced a trustworthy answer; on false the caller must re-solve
// cold. A returned Infeasible solution is dual-certified: the dual run found
// a violated row whose nonbasic columns cannot repair the violation, a
// Farkas-style certificate that needs no cold phase-1 confirmation.
func (rv *revised) resolve(lower, upper []float64) (*Solution, bool) {
	rv.iters = 0
	rv.applyBounds(lower, upper)
	rv.computeXB()
	ok, infeasible := rv.dualSimplex()
	if !ok {
		return nil, false
	}
	if infeasible {
		return &Solution{Status: Infeasible, Iters: rv.iters}, true
	}
	status, obj := rv.simplex(rv.c)
	if status != Optimal {
		return nil, false
	}
	return rv.extract(obj), true
}

// dualSimplex runs the bounded-variable dual simplex until primal
// feasibility is restored, starting from a dual-feasible (previously
// optimal) basis whose bounds have moved. It returns (true, false) on
// success, (true, true) when a violated row is certified unrepairable (the
// subproblem is infeasible), and (false, _) when it finds no trustworthy
// pivot or exceeds its iteration budget — the caller must then re-solve
// cold.
func (rv *revised) dualSimplex() (ok, infeasible bool) {
	maxIter := 50 + 2*(rv.m+rv.width)
	for iter := 0; iter < maxIter; iter++ {
		if rv.ef.count()-rv.lastFact > refactorEvery {
			if !rv.refactorAndRecompute() {
				return false, false
			}
		}
		// Leaving row: the most-violated basic variable.
		r := -1
		above := false
		worst := feasTol
		for i := 0; i < rv.m; i++ {
			b := rv.basis[i]
			if v := rv.lo[b] - rv.xB[i]; v > worst {
				worst, r, above = v, i, false
			}
			if v := rv.xB[i] - rv.up[b]; v > worst {
				worst, r, above = v, i, true
			}
		}
		if r < 0 {
			return true, false
		}
		rv.iters++

		// Pivot row rho = e_r B^-1 and multipliers y = c_B B^-1.
		rho := rv.rho
		for i := range rho {
			rho[i] = 0
		}
		rho[r] = 1
		rv.ef.btran(rho)
		y := rv.y
		for i := 0; i < rv.m; i++ {
			y[i] = rv.c[rv.basis[i]]
		}
		rv.ef.btran(y)

		// Entering column: among sign-admissible nonbasic columns (those
		// whose pivot keeps every reduced cost on its feasible side), take
		// the minimum |d_j|/|alpha_j| ratio; ties break on the smallest
		// index so the restoration is deterministic.
		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < rv.width; j++ {
			if rv.inBasis[j] || !(rv.up[j]-rv.lo[j] > eps) {
				continue // basic, or fixed: cannot move
			}
			alpha := rv.colDot(j, rho)
			if math.Abs(alpha) < dualPivTol {
				continue
			}
			// The leaving variable exits at its violated bound; its new
			// reduced cost is -d_j/alpha, which must be <= 0 when it leaves
			// at its lower bound and >= 0 at its upper bound. Combined with
			// the sign of d_j at each resting side, that fixes the
			// admissible sign of alpha.
			if !above {
				if !rv.atUpper[j] && alpha > -dualPivTol {
					continue
				}
				if rv.atUpper[j] && alpha < dualPivTol {
					continue
				}
			} else {
				if !rv.atUpper[j] && alpha < dualPivTol {
					continue
				}
				if rv.atUpper[j] && alpha > -dualPivTol {
					continue
				}
			}
			d := rv.c[j] - rv.colDot(j, y)
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && enter >= 0 && j < enter) {
				bestRatio = ratio
				enter = j
			}
		}
		if enter < 0 {
			return rv.certifyInfeasible(rho, worst, above)
		}

		// FTRAN the entering column; its row-r component is the pivot.
		w := rv.col
		for i := range w {
			w[i] = 0
		}
		rv.colScatterAdd(enter, 1, w)
		rv.ef.ftran(w)
		piv := w[r]
		if math.Abs(piv) < dualPivTol {
			// The FTRAN'd pivot disagrees with the BTRAN'd row — the eta
			// chain has drifted. Refactorize and retry; on a fresh
			// factorization the basis itself is suspect, so fall back.
			if rv.ef.count() > rv.lastFact {
				if !rv.refactorAndRecompute() {
					return false, false
				}
				continue
			}
			return false, false
		}

		// Step length: move the entering variable until the leaving basic
		// variable reaches its violated bound.
		bound := rv.lo[rv.basis[r]]
		if above {
			bound = rv.up[rv.basis[r]]
		}
		step := (rv.xB[r] - bound) / piv
		rest := rv.lo[enter]
		if rv.atUpper[enter] {
			rest = rv.up[enter]
		}
		for i := 0; i < rv.m; i++ {
			if w[i] != 0 {
				rv.xB[i] -= w[i] * step
			}
		}
		rv.ef.push(r, w)
		rv.noteEta()
		leavingCol := rv.basis[r]
		rv.basis[r] = enter
		rv.inBasis[enter] = true
		rv.atUpper[enter] = false
		rv.inBasis[leavingCol] = false
		rv.atUpper[leavingCol] = above
		rv.xB[r] = rest + step
		rv.stats.DualPivots++
	}
	return false, false
}

// certifyInfeasible decides what "no admissible dual pivot" means for the
// violated row r with pivot row rho. The row equation
//
//	x_Br + sum_j alpha_j x_j = rho·b
//
// bounds how far the violated basic variable can move: only nonbasic columns
// whose alpha sign pushes x_Br toward its violated bound ("repairing"
// columns) help, and each contributes at most |alpha_j| times its bound
// span. When that total capacity cannot cover the violation, no feasible
// point exists — a Farkas-style certificate, so the warm path may report
// Infeasible directly instead of paying a cold phase-1 re-solve for the same
// verdict. With enough capacity the failure is merely numerical (every
// repairing pivot was below tolerance) and the caller falls back cold.
func (rv *revised) certifyInfeasible(rho []float64, violation float64, above bool) (ok, infeasible bool) {
	capacity := 0.0
	for j := 0; j < rv.width; j++ {
		if rv.inBasis[j] {
			continue
		}
		alpha := rv.colDot(j, rho)
		if alpha == 0 {
			continue
		}
		repairing := false
		if !above {
			// x_Br must increase: decrease alpha_j x_j.
			repairing = (!rv.atUpper[j] && alpha < 0) || (rv.atUpper[j] && alpha > 0)
		} else {
			repairing = (!rv.atUpper[j] && alpha > 0) || (rv.atUpper[j] && alpha < 0)
		}
		if !repairing {
			continue
		}
		span := rv.up[j] - rv.lo[j]
		if math.IsInf(span, 1) {
			return false, false // unlimited repair room: not a certificate
		}
		capacity += math.Abs(alpha) * span
	}
	if capacity < violation-feasTol {
		return true, true
	}
	return false, false
}
