package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randBoundedProblem builds a random feasible-looking LP with finite bounds,
// mixed senses, and a mix of integer-like [0,1]/[0,k] boxes — the shape the
// branch-and-bound layer feeds the solver.
func randBoundedProblem(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(5)
	m := 1 + rng.Intn(4)
	p := &Problem{}
	for j := 0; j < n; j++ {
		up := float64(1 + rng.Intn(5))
		p.AddVar(math.Round(rng.Float64()*10)-3, 0, up, "")
	}
	for r := 0; r < m; r++ {
		coef := make([]float64, n)
		idx := make([]int, n)
		for j := 0; j < n; j++ {
			idx[j] = j
			coef[j] = math.Round(rng.Float64()*6 - 2)
		}
		sense := Sense(rng.Intn(3))
		rhs := math.Round(rng.Float64() * 8)
		if sense == EQ {
			// Keep equality rows satisfiable: use the row value at a random
			// interior-ish point.
			rhs = 0
			for j := 0; j < n; j++ {
				rhs += coef[j] * math.Round(p.Upper[j]/2)
			}
		}
		p.AddConstraint(idx, coef, sense, rhs, "")
	}
	return p
}

// perturbBounds tightens/loosens a few variable bounds the way branching
// does: integer splits (floor/ceil), fixings, and occasional restorations.
func perturbBounds(rng *rand.Rand, p *Problem, lower, upper []float64) {
	for k := 0; k < 1+rng.Intn(2); k++ {
		j := rng.Intn(p.NumVars())
		switch rng.Intn(4) {
		case 0: // branch down
			upper[j] = math.Max(p.Lower[j], math.Floor(upper[j]-0.5))
		case 1: // branch up
			lower[j] = math.Min(p.Upper[j], math.Ceil(lower[j]+0.5))
		case 2: // fix
			v := math.Round(p.Lower[j] + rng.Float64()*(p.Upper[j]-p.Lower[j]))
			lower[j], upper[j] = v, v
		case 3: // restore
			lower[j], upper[j] = p.Lower[j], p.Upper[j]
		}
		if lower[j] > upper[j] {
			lower[j], upper[j] = p.Lower[j], p.Upper[j]
		}
	}
}

// TestSolverWarmMatchesCold drives a Solver through random branching-style
// bound sequences and checks every warm answer against an independent cold
// solve of the same bounds: same status, same objective, and a feasible
// primal point. This is the correctness contract the parallel
// branch-and-bound search relies on.
func TestSolverWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	warmSeen := 0
	for trial := 0; trial < 120; trial++ {
		p := randBoundedProblem(rng)
		s, err := NewSolver(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s.Lean = true
		lower := append([]float64(nil), p.Lower...)
		upper := append([]float64(nil), p.Upper...)
		for step := 0; step < 12; step++ {
			sol, warm := s.Solve(lower, upper)
			if warm {
				warmSeen++
			}
			work := p.Clone()
			copy(work.Lower, lower)
			copy(work.Upper, upper)
			ref, err := Solve(work)
			if err != nil {
				t.Fatalf("trial %d step %d: reference: %v", trial, step, err)
			}
			if sol.Status != ref.Status {
				t.Fatalf("trial %d step %d (warm=%v): status %v, reference %v", trial, step, warm, sol.Status, ref.Status)
			}
			if sol.Status == Optimal {
				if math.Abs(sol.Objective-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
					t.Fatalf("trial %d step %d (warm=%v): objective %g, reference %g", trial, step, warm, sol.Objective, ref.Objective)
				}
				if v := work.FirstViolation(sol.X, 1e-6); v != "" {
					t.Fatalf("trial %d step %d (warm=%v): infeasible point: %s", trial, step, warm, v)
				}
			}
			perturbBounds(rng, p, lower, upper)
		}
	}
	if warmSeen == 0 {
		t.Fatal("no warm solve ever happened; the warm path is dead")
	}
	t.Logf("warm solves: %d", warmSeen)
}

// TestSolverColdMatchesSolve pins the byte-exactness contract: SolveCold
// through reused buffers must reproduce lp.Solve exactly, including the
// iteration count (same pivots in the same order).
func TestSolverColdMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		p := randBoundedProblem(rng)
		s, err := NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		lower := append([]float64(nil), p.Lower...)
		upper := append([]float64(nil), p.Upper...)
		for step := 0; step < 6; step++ {
			got := s.SolveCold(lower, upper)
			work := p.Clone()
			copy(work.Lower, lower)
			copy(work.Upper, upper)
			ref, err := Solve(work)
			if err != nil {
				t.Fatal(err)
			}
			if got.Status != ref.Status || got.Iters != ref.Iters {
				t.Fatalf("trial %d step %d: status/iters %v/%d, reference %v/%d",
					trial, step, got.Status, got.Iters, ref.Status, ref.Iters)
			}
			if got.Status == Optimal {
				if got.Objective != ref.Objective {
					t.Fatalf("trial %d step %d: objective %v != reference %v", trial, step, got.Objective, ref.Objective)
				}
				for j := range got.X {
					if got.X[j] != ref.X[j] {
						t.Fatalf("trial %d step %d: X[%d] %v != reference %v", trial, step, j, got.X[j], ref.X[j])
					}
				}
			}
			perturbBounds(rng, p, lower, upper)
		}
	}
}

// TestSolverConflictingBounds checks the lower>upper short-circuit.
func TestSolverConflictingBounds(t *testing.T) {
	p := &Problem{}
	p.AddVar(1, 0, 4, "x")
	p.AddConstraint([]int{0}, []float64{1}, LE, 3, "cap")
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, warm := s.Solve([]float64{2}, []float64{1})
	if sol.Status != Infeasible || warm {
		t.Fatalf("conflicting bounds: status %v warm %v", sol.Status, warm)
	}
	// The solver must still work afterwards.
	sol, _ = s.Solve([]float64{0}, []float64{4})
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-9 {
		t.Fatalf("after conflict: %v obj %g", sol.Status, sol.Objective)
	}
}

// TestSolverWarmReducesPivots checks the point of the exercise: across a
// branching-style bound sequence, the warm path spends fewer total pivots
// than cold-only on the same sequence.
func TestSolverWarmReducesPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	totalWarm, totalCold := 0, 0
	for trial := 0; trial < 40; trial++ {
		p := randBoundedProblem(rng)
		seqLower := make([][]float64, 0, 16)
		seqUpper := make([][]float64, 0, 16)
		lower := append([]float64(nil), p.Lower...)
		upper := append([]float64(nil), p.Upper...)
		for step := 0; step < 16; step++ {
			seqLower = append(seqLower, append([]float64(nil), lower...))
			seqUpper = append(seqUpper, append([]float64(nil), upper...))
			perturbBounds(rng, p, lower, upper)
		}
		warmS, _ := NewSolver(p)
		warmS.Lean = true
		coldS, _ := NewSolver(p)
		coldS.Lean = true
		coldS.NoWarm = true
		for i := range seqLower {
			warmS.Solve(seqLower[i], seqUpper[i])
			coldS.Solve(seqLower[i], seqUpper[i])
		}
		totalWarm += warmS.Stats.Pivots
		totalCold += coldS.Stats.Pivots
	}
	if totalWarm >= totalCold {
		t.Fatalf("warm starts did not reduce pivots: warm=%d cold=%d", totalWarm, totalCold)
	}
	t.Logf("pivots: warm=%d cold=%d (%.1f%% saved)", totalWarm, totalCold,
		100*(1-float64(totalWarm)/float64(totalCold)))
}
