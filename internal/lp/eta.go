package lp

// etaFile is a product-form-of-the-inverse (PFI) representation of the basis
// inverse: B^-1 = E_k · ... · E_2 · E_1, where each eta matrix E differs from
// the identity in a single column r:
//
//	E[r][r] = 1/w_r        (pivVal)
//	E[i][r] = -w_i/w_r     (stored off-pivot entries)
//
// with w = B_old^-1 · a_enter the FTRAN'd entering column of the pivot that
// produced it. Applying FTRAN (x -> E·x, in append order) or BTRAN
// (y -> E^T·y, in reverse order) costs O(nnz) per eta, so a solve touches the
// basis in time proportional to the factorization's fill rather than the
// dense m×n tableau. The file grows by one eta per pivot and is periodically
// rebuilt from scratch (refactorization) to bound both fill and accumulated
// roundoff.
type etaFile struct {
	pivRow []int
	pivVal []float64 // 1/w_r per eta
	start  []int     // len(pivRow)+1 offsets into idx/val
	idx    []int     // off-pivot row indices
	val    []float64 // -w_i/w_r per off-pivot entry
}

// reset empties the file, keeping capacity.
func (e *etaFile) reset() {
	e.pivRow = e.pivRow[:0]
	e.pivVal = e.pivVal[:0]
	e.start = e.start[:0]
	e.idx = e.idx[:0]
	e.val = e.val[:0]
}

// count returns the number of eta matrices in the file.
func (e *etaFile) count() int { return len(e.pivRow) }

// entries returns the total number of stored entries (pivots plus fill),
// the "eta length" the solver statistics report.
func (e *etaFile) entries() int { return len(e.pivRow) + len(e.idx) }

// push appends the eta matrix of a pivot on row r with FTRAN'd entering
// column w. Identity etas (unit pivot, no fill) are dropped: applying them is
// a no-op, and the all-slack initial factorization is made entirely of them.
func (e *etaFile) push(r int, w []float64) {
	piv := 1 / w[r]
	if len(e.start) == 0 {
		e.start = append(e.start, 0)
	}
	base := len(e.idx)
	for i, wi := range w {
		if i != r && wi != 0 {
			e.idx = append(e.idx, i)
			e.val = append(e.val, -wi*piv)
		}
	}
	if piv == 1 && len(e.idx) == base {
		return // identity
	}
	e.pivRow = append(e.pivRow, r)
	e.pivVal = append(e.pivVal, piv)
	e.start = append(e.start, len(e.idx))
}

// pushSingleton appends a fill-free eta with the given pivot row and
// reciprocal pivot value — the diagonal etas of an initial ±1 basis.
func (e *etaFile) pushSingleton(r int, pivVal float64) {
	if len(e.start) == 0 {
		e.start = append(e.start, 0)
	}
	e.pivRow = append(e.pivRow, r)
	e.pivVal = append(e.pivVal, pivVal)
	e.start = append(e.start, len(e.idx))
}

// ftran applies x <- E_k · ... · E_1 · x in place, turning a column of A into
// its representation under the current basis inverse.
func (e *etaFile) ftran(x []float64) {
	for k := 0; k < len(e.pivRow); k++ {
		r := e.pivRow[k]
		xr := x[r]
		if xr == 0 {
			continue
		}
		for t := e.start[k]; t < e.start[k+1]; t++ {
			x[e.idx[t]] += e.val[t] * xr
		}
		x[r] = e.pivVal[k] * xr
	}
}

// btran applies y <- E_1^T · ... · E_k^T · y in place (reverse eta order),
// producing row vectors y^T B^-1 such as the simplex multipliers and the
// pivot row needed by the dual ratio test and Devex updates.
func (e *etaFile) btran(y []float64) {
	for k := len(e.pivRow) - 1; k >= 0; k-- {
		r := e.pivRow[k]
		s := e.pivVal[k] * y[r]
		for t := e.start[k]; t < e.start[k+1]; t++ {
			s += e.val[t] * y[e.idx[t]]
		}
		y[r] = s
	}
}
