package lp

// Solver re-solves one linear program under varying variable bounds, the
// access pattern of LP-relaxation branch and bound: the constraint matrix
// and objective never change between nodes, only the bounds of the
// branching variables move. Two things make it much cheaper than calling
// Solve per node:
//
//   - Warm starts. After an optimal solve, a bound change leaves the basis
//     dual feasible, so Solve restores primal feasibility with a short
//     bounded-variable dual-simplex run instead of re-running phase 1 from
//     scratch. Typical branch-and-bound children need a handful of dual
//     pivots where a cold solve needs dozens of phase-1+phase-2 pivots; and
//     when the dual run proves the child infeasible outright (see
//     SolverStats.WarmInfeasible) even the cold confirmation solve is
//     skipped.
//   - Shared factorization state. All solves run over one CSC column store
//     and one product-form basis factorization with periodic
//     refactorization, so neither a warm nor a cold solve re-allocates or
//     re-scans the matrix.
//
// A Solver is not safe for concurrent use; the parallel branch-and-bound
// driver gives each worker its own. SolveCold is arithmetic-identical to
// Solve(p) with the same bounds (only the allocations differ), which is what
// lets the serial search keep its byte-exact golden outputs while routing
// through a Solver.
type Solver struct {
	p  *Problem
	rv *revised

	hasBasis bool

	// Lean skips the diagnostic solution fields (duals, reduced costs, row
	// activity) that branch and bound never reads.
	Lean bool
	// NoWarm forces every Solve through the cold path (for byte-exact
	// serial reproduction and for measuring warm-start savings).
	NoWarm bool

	// Stats counts the solves by path and the simplex work spent.
	Stats SolverStats
}

// SolverStats instruments a Solver's lifetime.
type SolverStats struct {
	Warm   int // solves answered from a warm-started basis
	Cold   int // solves that (re)built the starting basis from scratch
	Pivots int // simplex iterations (primal and dual) across all solves
	// FallbackCold counts warm attempts whose basis restoration failed, so
	// the solve fell through to the cold path. Those solves are counted in
	// Cold as well; FallbackCold only classifies how they got there. The
	// solver flight recorder surfaces it as a warm-start health signal — a
	// rising fallback rate means the warm bases are not surviving the
	// branching pattern.
	FallbackCold int
	// WarmInfeasible counts warm re-solves whose dual simplex certified the
	// subproblem infeasible directly (an unrepairable violated row), so no
	// cold phase-1 confirmation was needed. These solves are counted in
	// Warm as well; the split lets flight/schedd telemetry distinguish a
	// dual-certified prune from a cold-certified one.
	WarmInfeasible int
	// PrimalPivots and DualPivots split the basis-changing pivots by
	// algorithm (bound flips count as iterations in Pivots but change no
	// basis). A healthy branch-and-bound run is dual-dominated: children
	// re-solve with a few dual pivots each.
	PrimalPivots int
	DualPivots   int
	// Refactorizations counts basis refactorizations (scheduled by eta-file
	// growth or forced by numerical drift), and EtaPeak is the largest
	// eta-file length (total stored entries) observed — together they
	// describe how hard the product-form update machinery is working.
	Refactorizations int
	EtaPeak          int
}

// NewSolver validates the problem once and returns a reusable solver for it.
// The problem must not be mutated afterwards; pass per-solve bounds to Solve
// instead.
func NewSolver(p *Problem) (*Solver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Solver{p: p}, nil
}

// Solve solves the problem under the given bounds, warm-starting from the
// previous solve's basis when possible, and reports whether the warm path
// produced the answer. Warm results are trusted at optimality and at
// dual-certified infeasibility; any other restoration outcome falls back to
// a cold solve, so every verdict carries either a phase-1 or a Farkas-style
// certificate. Conflicting bounds (lower above upper) short-circuit to an
// Infeasible solution.
func (s *Solver) Solve(lower, upper []float64) (*Solution, bool) {
	for j := range lower {
		if lower[j] > upper[j] {
			return &Solution{Status: Infeasible}, false
		}
	}
	if !s.NoWarm && s.hasBasis {
		s.rv.lean = s.Lean
		if sol, ok := s.rv.resolve(lower, upper); ok {
			s.Stats.Warm++
			s.Stats.Pivots += sol.Iters
			if sol.Status == Infeasible {
				s.Stats.WarmInfeasible++
			}
			return sol, true
		}
		// The failed restoration left the basis mid-pivot; the cold solve
		// below rebuilds from scratch.
		s.hasBasis = false
		s.Stats.FallbackCold++
	}
	return s.SolveCold(lower, upper), false
}

// SolveCold restarts from the all-slack basis for the given bounds (reusing
// the column store and factorization buffers) and solves with the two-phase
// primal simplex — the same arithmetic as Solve(p) on a problem carrying
// these bounds.
func (s *Solver) SolveCold(lower, upper []float64) *Solution {
	if s.rv == nil {
		s.rv = newRevised(s.p)
		s.rv.stats = &s.Stats
	}
	s.rv.lean = s.Lean
	sol := s.rv.solveCold(lower, upper)
	s.hasBasis = sol.Status == Optimal
	s.Stats.Cold++
	s.Stats.Pivots += sol.Iters
	return sol
}
