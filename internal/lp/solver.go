package lp

// Solver re-solves one linear program under varying variable bounds, the
// access pattern of LP-relaxation branch and bound: the constraint matrix
// and objective never change between nodes, only the bounds of the
// branching variables move. Two things make it much cheaper than calling
// Solve per node:
//
//   - Warm starts. After an optimal solve, a bound change leaves the basis
//     dual feasible, so Solve restores primal feasibility with a short
//     bounded-variable dual-simplex run instead of re-running phase 1 from
//     scratch. Typical branch-and-bound children need a handful of dual
//     pivots where a cold solve needs dozens of phase-1+phase-2 pivots.
//   - Buffer reuse. Cold rebuilds recycle the previous tableau's arrays,
//     eliminating the per-node make([][]float64) storm that dominated the
//     solver's allocation profile.
//
// A Solver is not safe for concurrent use; the parallel branch-and-bound
// driver gives each worker its own. SolveCold is arithmetic-identical to
// Solve(p) with the same bounds (only the allocations differ), which is what
// lets the serial search keep its byte-exact golden outputs while routing
// through a Solver.
type Solver struct {
	p *Problem
	t *tableau

	hasBasis  bool
	sinceCold int

	// Lean skips the diagnostic solution fields (duals, reduced costs, row
	// activity) that branch and bound never reads.
	Lean bool
	// NoWarm forces every Solve through the cold path (for byte-exact
	// serial reproduction and for measuring warm-start savings).
	NoWarm bool

	// Stats counts the solves by path and the simplex iterations spent.
	Stats SolverStats
}

// SolverStats instruments a Solver's lifetime.
type SolverStats struct {
	Warm   int // solves answered from a warm-started basis
	Cold   int // solves that (re)built the tableau from scratch
	Pivots int // simplex iterations (primal and dual) across all solves
	// FallbackCold counts warm attempts whose basis restoration failed, so
	// the solve fell through to the cold path. Those solves are counted in
	// Cold as well; FallbackCold only classifies how they got there. The
	// solver flight recorder surfaces it as a warm-start health signal — a
	// rising fallback rate means the warm bases are not surviving the
	// branching pattern.
	FallbackCold int
}

// warmRebuildEvery bounds how many consecutive warm re-solves may reuse one
// factorization before a cold rebuild refreshes it; Gauss-Jordan updates
// accumulate roundoff, and a periodic rebuild keeps the basis trustworthy.
const warmRebuildEvery = 64

// NewSolver validates the problem once and returns a reusable solver for it.
// The problem must not be mutated afterwards; pass per-solve bounds to Solve
// instead.
func NewSolver(p *Problem) (*Solver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Solver{p: p}, nil
}

// Solve solves the problem under the given bounds, warm-starting from the
// previous solve's basis when possible, and reports whether the warm path
// produced the answer. Warm results are only trusted at optimality: an
// unsuccessful or non-optimal restoration falls back to a cold solve, so
// infeasibility verdicts always carry a phase-1 certificate. Conflicting
// bounds (lower above upper) short-circuit to an Infeasible solution.
func (s *Solver) Solve(lower, upper []float64) (*Solution, bool) {
	for j := range lower {
		if lower[j] > upper[j] {
			return &Solution{Status: Infeasible}, false
		}
	}
	if !s.NoWarm && s.hasBasis && s.sinceCold < warmRebuildEvery {
		if sol, ok := s.t.resolve(lower, upper); ok {
			s.sinceCold++
			s.Stats.Warm++
			s.Stats.Pivots += sol.Iters
			return sol, true
		}
		// The failed restoration left the tableau mid-pivot; the cold
		// rebuild below discards it.
		s.hasBasis = false
		s.Stats.FallbackCold++
	}
	return s.SolveCold(lower, upper), false
}

// SolveCold rebuilds the tableau for the given bounds (reusing the previous
// tableau's buffers) and solves from scratch with the two-phase primal
// simplex — the same arithmetic as Solve(p) on a problem carrying these
// bounds.
func (s *Solver) SolveCold(lower, upper []float64) *Solution {
	s.t = buildTableau(s.p, lower, upper, s.t)
	s.t.lean = s.Lean
	sol := s.t.solve()
	s.hasBasis = sol.Status == Optimal
	s.sinceCold = 0
	s.Stats.Cold++
	s.Stats.Pivots += sol.Iters
	return sol
}
