package lp

import "math"

// tableau is the legacy dense bounded-variable simplex working
// representation:
//
//	maximize  c·y   subject to  A y = b,  lo_j <= y_j <= u_j
//
// where y holds shifted originals (x_j = shift_j + y_j), one slack/surplus
// column per inequality row, and phase-1 artificials. Upper bounds are
// handled implicitly — nonbasic variables may rest at their lower OR upper
// bound, and the ratio test admits bound flips — so bounded variables cost
// no extra rows.
//
// The production hot path is the sparse revised simplex in revised.go; this
// dense kernel is retained only as SolveReference, the independent oracle
// the solvercheck differential suite pits the revised kernel against. The
// two implementations share no simplex code beyond the package tolerances,
// which is what makes agreement between them meaningful.
type tableau struct {
	p *Problem

	m, n  int         // rows, structural+slack columns (artificials appended after n)
	a     [][]float64 // m x width coefficient matrix, canonical w.r.t. basis
	val   []float64   // current VALUE of the basic variable in each row
	c     []float64   // phase-2 objective over all columns
	lo    []float64   // lower bound per column (0 after a cold build)
	u     []float64   // upper bound per column (+Inf when unbounded)
	cons  float64     // objective constant from bound shifting
	shift []float64   // per-original-variable shift captured at build time

	// curLow/curUp are the original-space bounds of the current solve, used
	// to snap extracted values; they track warm bound changes while shift
	// stays fixed.
	curLow []float64
	curUp  []float64

	basis   []int  // basic column per row
	inBasis []bool // column -> basic?
	atUpper []bool // nonbasic column rests at its upper bound
	width   int    // total columns incl. artificials
	nArt    int
	iters   int
	lean    bool // skip duals/reduced costs/activity in extracted solutions

	// cb and objScratch are per-solve scratch buffers (basic objective
	// coefficients; the phase-1 objective).
	cb         []float64
	objScratch []float64

	// consSlack maps each original constraint to its slack/surplus column
	// (-1 for equality rows), and consSense records the original sense, for
	// dual recovery.
	consSlack []int
	consSense []Sense
}

// SolveReference solves the linear program with the legacy dense tableau
// simplex. It exists for differential testing only: the solvercheck suite
// pits it against the production revised-simplex Solve across the seeded
// corpora and fuzz targets, and any disagreement beyond tolerance is a bug
// in one of the kernels. Production callers should use Solve.
func SolveReference(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return newTableau(p).solve(), nil
}

func newTableau(p *Problem) *tableau {
	lower, upper := p.Lower, p.Upper
	nOrig := p.NumVars()
	m := len(p.Constraints)
	nSlack := 0
	for _, c := range p.Constraints {
		if c.Sense != EQ {
			nSlack++
		}
	}
	n := nOrig + nSlack
	width := n + m // room for artificials

	t := &tableau{p: p, m: m, n: n, width: width}
	t.a = make([][]float64, m)
	for i := range t.a {
		t.a[i] = make([]float64, width)
	}
	t.val = make([]float64, m)
	t.c = make([]float64, width)
	t.lo = make([]float64, width)
	t.u = make([]float64, width)
	t.shift = make([]float64, nOrig)
	t.curLow = make([]float64, nOrig)
	t.curUp = make([]float64, nOrig)
	t.basis = make([]int, m)
	t.inBasis = make([]bool, width)
	t.atUpper = make([]bool, width)
	t.cb = make([]float64, m)
	t.objScratch = make([]float64, width)
	t.consSlack = make([]int, m)
	t.consSense = make([]Sense, m)
	copy(t.shift, lower)
	copy(t.curLow, lower)
	copy(t.curUp, upper)
	for r := range t.consSlack {
		t.consSlack[r] = -1
	}

	for j := 0; j < nOrig; j++ {
		t.c[j] = p.Objective[j]
		t.cons += p.Objective[j] * lower[j]
		t.u[j] = upper[j] - lower[j]
	}
	for j := nOrig; j < width; j++ {
		t.u[j] = math.Inf(1)
	}

	slack := nOrig
	art := n
	for i, c := range p.Constraints {
		t.consSense[i] = c.Sense
		// Shift RHS for lower bounds: a·(lo+y) <= b  =>  a·y <= b - a·lo.
		shift := 0.0
		for j, v := range c.Coef {
			shift += v * lower[j]
		}
		rhs := c.RHS - shift
		sense := c.Sense
		copy(t.a[i], c.Coef)
		// Normalize to non-negative RHS so artificials start feasible.
		if rhs < 0 {
			for j := 0; j < nOrig; j++ {
				t.a[i][j] = -t.a[i][j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		t.val[i] = rhs
		switch sense {
		case LE:
			t.a[i][slack] = 1
			t.setBasic(i, slack)
			t.consSlack[i] = slack
			slack++
		case GE:
			t.a[i][slack] = -1
			t.consSlack[i] = slack
			slack++
			t.a[i][art] = 1
			t.setBasic(i, art)
			art++
		case EQ:
			t.a[i][art] = 1
			t.setBasic(i, art)
			art++
		}
	}
	t.nArt = art - n
	return t
}

func (t *tableau) setBasic(row, col int) {
	t.basis[row] = col
	t.inBasis[col] = true
	t.atUpper[col] = false
}

func (t *tableau) solve() *Solution {
	// Phase 1: drive the artificials to zero.
	if t.nArt > 0 {
		phase1 := t.objScratch
		for j := range phase1 {
			phase1[j] = 0
		}
		for j := t.n; j < t.n+t.nArt; j++ {
			phase1[j] = -1
		}
		status, obj := t.simplex(phase1)
		if status == IterationLimit {
			return &Solution{Status: IterationLimit, Iters: t.iters}
		}
		if obj < -feasTol {
			return &Solution{Status: Infeasible, Iters: t.iters}
		}
		// Drive remaining basic artificials (at value 0) out where possible.
		// Only columns resting at their lower bound may enter: they hold
		// value 0, so the swap changes the basis without moving the point.
		for i := 0; i < t.m; i++ {
			if t.basis[i] < t.n {
				continue
			}
			for j := 0; j < t.n; j++ {
				if !t.inBasis[j] && !t.atUpper[j] && math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j, false)
					break
				}
			}
		}
		// Forbid artificials from re-entering or growing. Nonbasic artificial
		// columns are destroyed outright. An artificial that is still basic
		// (at value zero, in a row where no resting-at-lower column could
		// host the swap above) keeps its column — it is the row's identity
		// column — but is clamped to an upper bound of zero so the phase-2
		// ratio test blocks any move that would lift it off zero. Without
		// the clamp its +Inf bound lets phase 2 grow it freely, silently
		// relaxing the underlying equality constraint.
		for j := t.n; j < t.n+t.nArt; j++ {
			if !t.inBasis[j] {
				for i := 0; i < t.m; i++ {
					t.a[i][j] = 0
				}
			}
			t.u[j] = 0
		}
	}

	status, obj := t.simplex(t.c)
	if status != Optimal {
		return &Solution{Status: status, Iters: t.iters}
	}
	return t.extract(obj)
}

// extract materializes the current optimal basis into a Solution, snapping
// values near the current bounds onto them. In lean mode the diagnostic
// fields (duals, reduced costs, row activity) are skipped — the
// branch-and-bound hot path never reads them and their allocations dominate
// a node solve.
func (t *tableau) extract(obj float64) *Solution {
	x := make([]float64, t.p.NumVars())
	for j := range x {
		if t.atUpper[j] {
			x[j] = t.u[j]
		} else if t.lo[j] != 0 {
			x[j] = t.lo[j]
		}
	}
	for i, col := range t.basis {
		if col < t.p.NumVars() {
			x[col] = t.val[i]
		}
	}
	for j := range x {
		x[j] += t.shift[j]
		if math.Abs(x[j]-t.curLow[j]) < feasTol {
			x[j] = t.curLow[j]
		}
		if !math.IsInf(t.curUp[j], 1) && math.Abs(x[j]-t.curUp[j]) < feasTol {
			x[j] = t.curUp[j]
		}
	}
	if t.lean {
		return &Solution{Status: Optimal, X: x, Objective: obj + t.cons, Iters: t.iters}
	}
	activity, slacks := rowActivity(t.p, x)
	return &Solution{
		Status:       Optimal,
		X:            x,
		Objective:    obj + t.cons,
		Iters:        t.iters,
		Duals:        t.duals(),
		ReducedCosts: t.reducedCosts(),
		RowActivity:  activity,
		Slacks:       slacks,
	}
}

// reducedCosts returns c_j - z_j for each original variable at the current
// basis. Basic variables report exactly zero; near-zero values on nonbasic
// variables are snapped to zero so degenerate optima read cleanly.
func (t *tableau) reducedCosts() []float64 {
	out := make([]float64, t.p.NumVars())
	for j := range out {
		if t.inBasis[j] {
			continue
		}
		rc := t.c[j]
		for i := 0; i < t.m; i++ {
			if cb := t.c[t.basis[i]]; cb != 0 {
				rc -= cb * t.a[i][j]
			}
		}
		if math.Abs(rc) < feasTol {
			rc = 0
		}
		out[j] = rc
	}
	return out
}

// rowActivity evaluates each constraint at x, returning the activities a_r·x
// and the feasible-side slacks (RHS - activity for <=, activity - RHS for >=,
// |activity - RHS| for equality rows).
func rowActivity(p *Problem, x []float64) (activity, slacks []float64) {
	activity = make([]float64, len(p.Constraints))
	slacks = make([]float64, len(p.Constraints))
	for r, c := range p.Constraints {
		act := 0.0
		for j, v := range c.Coef {
			if v != 0 {
				act += v * x[j]
			}
		}
		activity[r] = act
		var s float64
		switch c.Sense {
		case LE:
			s = c.RHS - act
		case GE:
			s = act - c.RHS
		case EQ:
			s = math.Abs(act - c.RHS)
		}
		if math.Abs(s) < feasTol {
			s = 0
		}
		slacks[r] = s
	}
	return activity, slacks
}

// duals recovers the constraint multipliers from the reduced costs of the
// slack/surplus columns at the optimal basis: for a maximization, the shadow
// price of a <= row is z_slack and of a >= row is -z_surplus; equality rows
// report NaN (their artificial columns were zeroed after phase 1).
func (t *tableau) duals() []float64 {
	out := make([]float64, len(t.p.Constraints))
	for r := range out {
		col := t.consSlack[r]
		if col < 0 {
			out[r] = math.NaN()
			continue
		}
		z := 0.0
		for i := 0; i < t.m; i++ {
			if cb := t.c[t.basis[i]]; cb != 0 {
				z += cb * t.a[i][col]
			}
		}
		if t.consSense[r] == GE {
			z = -z
		}
		if math.Abs(z) < feasTol {
			z = 0
		}
		out[r] = z
	}
	return out
}

// objValue evaluates obj at the current basic solution, including nonbasic
// columns resting at finite upper bounds or nonzero lower bounds.
func (t *tableau) objValue(obj []float64) float64 {
	v := 0.0
	for i := 0; i < t.m; i++ {
		v += obj[t.basis[i]] * t.val[i]
	}
	for j := 0; j < t.n+t.nArt; j++ {
		if t.inBasis[j] || obj[j] == 0 {
			continue
		}
		if t.atUpper[j] {
			v += obj[j] * t.u[j]
		} else if t.lo[j] != 0 {
			v += obj[j] * t.lo[j]
		}
	}
	return v
}

// simplex maximizes obj over the current basis with the bounded-variable
// rules: a nonbasic-at-lower column enters when its reduced cost is
// positive, a nonbasic-at-upper column when negative; the ratio test limits
// the move by basic variables hitting either of their bounds or the
// entering variable flipping to its opposite bound.
func (t *tableau) simplex(obj []float64) (Status, float64) {
	maxIters := 20000 + 200*(t.m+t.width)
	cb := t.cb
	ncols := t.n + t.nArt
	for iter := 0; ; iter++ {
		if t.iters++; t.iters > maxIters {
			return IterationLimit, 0
		}
		for i := 0; i < t.m; i++ {
			cb[i] = obj[t.basis[i]]
		}
		useBland := iter > blandTrip
		enter := -1
		enterScore := eps
		for j := 0; j < ncols; j++ {
			if t.inBasis[j] {
				continue
			}
			rc := obj[j]
			for i := 0; i < t.m; i++ {
				if cb[i] != 0 {
					rc -= cb[i] * t.a[i][j]
				}
			}
			// Improving directions: increase from lower (rc > 0) or
			// decrease from upper (rc < 0).
			score := 0.0
			if !t.atUpper[j] && rc > eps {
				score = rc
			} else if t.atUpper[j] && rc < -eps {
				score = -rc
			} else {
				continue
			}
			if useBland {
				enter = j
				break
			}
			if score > enterScore {
				enterScore = score
				enter = j
			}
		}
		if enter < 0 {
			return Optimal, t.objValue(obj)
		}

		// Direction: +1 when increasing from lower, -1 when decreasing from
		// upper. Basic variable i changes by -dir*a[i][enter] per unit.
		dir := 1.0
		if t.atUpper[enter] {
			dir = -1
		}
		limit := t.u[enter] - t.lo[enter] // bound-flip distance (may be +Inf)
		leave := -1
		leaveAtUpper := false
		for i := 0; i < t.m; i++ {
			d := dir * t.a[i][enter]
			var ratio float64
			var hitsUpper bool
			switch {
			case d > eps: // basic value decreases toward its lower bound
				ratio = (t.val[i] - t.lo[t.basis[i]]) / d
			case d < -eps: // basic value increases toward its upper bound
				ub := t.u[t.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				ratio = (ub - t.val[i]) / (-d)
				hitsUpper = true
			default:
				continue
			}
			if ratio < limit-eps || (ratio < limit+eps && leave >= 0 && t.basis[i] < t.basis[leave]) {
				limit = ratio
				leave = i
				leaveAtUpper = hitsUpper
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded, 0
		}
		if limit < 0 {
			limit = 0
		}

		if leave < 0 {
			// Bound flip: the entering variable travels all the way to its
			// opposite bound without any basic variable blocking.
			for i := 0; i < t.m; i++ {
				t.val[i] -= dir * t.a[i][enter] * limit
				if lb := t.lo[t.basis[i]]; t.val[i] < lb && t.val[i] > lb-feasTol {
					t.val[i] = lb
				}
			}
			t.atUpper[enter] = !t.atUpper[enter]
			continue
		}

		// Pivot: entering becomes basic at its new value; the leaving
		// variable exits at whichever bound it hit.
		newVal := t.lo[enter] + dir*limit
		if t.atUpper[enter] {
			newVal = t.u[enter] + dir*limit // dir = -1: u - limit
		}
		for i := 0; i < t.m; i++ {
			t.val[i] -= dir * t.a[i][enter] * limit
			if lb := t.lo[t.basis[i]]; t.val[i] < lb && t.val[i] > lb-feasTol {
				t.val[i] = lb
			}
		}
		leavingCol := t.basis[leave]
		t.pivot(leave, enter, t.atUpper[enter])
		t.val[leave] = newVal
		t.inBasis[leavingCol] = false
		t.atUpper[leavingCol] = leaveAtUpper
		if leaveAtUpper {
			// Snap to the exact bound to stop error accumulation.
			_ = leavingCol
		}
	}
}

// pivot makes column enter basic in row leave with Gauss-Jordan elimination.
// enterWasAtUpper records the entering column's pre-pivot resting bound so
// the caller can value it correctly; the elimination itself is bound-blind.
func (t *tableau) pivot(leave, enter int, enterWasAtUpper bool) {
	piv := t.a[leave][enter]
	inv := 1 / piv
	row := t.a[leave]
	for j := range row {
		row[j] *= inv
	}
	row[enter] = 1
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := range ai {
			ai[j] -= f * row[j]
		}
		ai[enter] = 0
	}
	old := t.basis[leave]
	t.inBasis[old] = false
	t.setBasic(leave, enter)
	_ = enterWasAtUpper
}
