package lp

import (
	"math"
	"sort"
)

const (
	// refactorEvery bounds how many eta updates may stack on one
	// factorization before the basis is refactorized from scratch: PFI
	// updates accumulate both fill (FTRAN/BTRAN cost) and roundoff, and a
	// periodic rebuild resets both.
	refactorEvery = 64
	// singularTol is the minimum pivot magnitude refactorization accepts
	// before declaring the basis numerically singular.
	singularTol = 1e-10
	// etaPivTol is the minimum pivot magnitude accepted for an eta update on
	// a stale factorization; smaller pivots trigger an early refactorization
	// so the update is re-derived from fresh numbers.
	etaPivTol = 1e-8
	// dvxReset caps the Devex reference weights; when any weight outgrows it
	// the reference framework is reset to the current basis.
	dvxReset = 1e7
)

// numericFailure is an internal status for "the factorization went bad":
// solveCold retries once from a fresh basis and the warm path falls back to
// a cold solve. It never escapes the package.
const numericFailure Status = -1

// revised is the sparse revised-simplex working state: a bounded-variable
// two-phase primal simplex (with a dual-simplex warm re-solve in dual.go)
// over the CSC column store, with the basis inverse kept in product form
// (etaFile) instead of a dense tableau. Columns are laid out as
//
//	[0, nOrig)      structural variables
//	[nOrig, n)      slack/surplus singletons
//	[n, n+m)        phase-1 artificials, one per row, implicit ±1 singletons
//
// Unlike the dense tableau there is no bound shifting and no row sign
// normalization: variables keep their original [lo, up] ranges and each
// artificial column carries the sign of its row's initial residual, so a
// warm re-solve only moves lo/up and recomputes the basic values with one
// FTRAN.
type revised struct {
	p  *Problem
	cs *colStore

	m, n, width int // rows; structural+slack columns; +m artificial columns

	lo, up  []float64 // current bounds per column
	c       []float64 // phase-2 objective per column
	b       []float64 // RHS per row
	artSign []float64 // per row: sign of the artificial column (±1)
	artUsed []bool    // per row: artificial participates in phase 1

	basis   []int  // basic column per row
	inBasis []bool // column -> basic?
	atUpper []bool // nonbasic column rests at its upper bound
	xB      []float64

	ef       etaFile
	lastFact int // eta count right after the last refactorization

	dvx   []float64 // Devex reference weights per column
	iters int
	lean  bool // skip duals/reduced costs/activity in extracted solutions

	// Per-solve scratch (length m unless noted).
	wrk  []float64
	col  []float64
	rho  []float64
	y    []float64
	cPh1 []float64 // length width; phase-1 objective
	// Refactorization scratch, allocated on first use.
	factOrder []int
	factBasis []int
	rowUsed   []bool

	stats *SolverStats // counter sink; never nil (lp.Solve uses a throwaway)
}

// newRevised builds the solver state for a validated problem. Bounds and
// basis are installed by reset before each cold solve.
func newRevised(p *Problem) *revised {
	cs := buildColStore(p)
	m := cs.m
	width := cs.n + m
	rv := &revised{
		p:       p,
		cs:      cs,
		m:       m,
		n:       cs.n,
		width:   width,
		lo:      make([]float64, width),
		up:      make([]float64, width),
		c:       make([]float64, width),
		b:       make([]float64, m),
		artSign: make([]float64, m),
		artUsed: make([]bool, m),
		basis:   make([]int, m),
		inBasis: make([]bool, width),
		atUpper: make([]bool, width),
		xB:      make([]float64, m),
		dvx:     make([]float64, width),
		wrk:     make([]float64, m),
		col:     make([]float64, m),
		rho:     make([]float64, m),
		y:       make([]float64, m),
		cPh1:    make([]float64, width),
		stats:   &SolverStats{},
	}
	for i, cons := range p.Constraints {
		rv.b[i] = cons.RHS
	}
	for j := 0; j < cs.nOrig; j++ {
		rv.c[j] = p.Objective[j]
	}
	return rv
}

// colDot returns a_j · y, where j may be any column including the implicit
// artificial singletons.
func (rv *revised) colDot(j int, y []float64) float64 {
	if j < rv.n {
		return rv.cs.dot(j, y)
	}
	return rv.artSign[j-rv.n] * y[j-rv.n]
}

// colScatterAdd adds scale * a_j into out.
func (rv *revised) colScatterAdd(j int, scale float64, out []float64) {
	if j < rv.n {
		rv.cs.scatterAdd(j, scale, out)
		return
	}
	out[j-rv.n] += rv.artSign[j-rv.n] * scale
}

// colNNZ returns the stored nonzero count of column j.
func (rv *revised) colNNZ(j int) int {
	if j < rv.n {
		return rv.cs.nnz(j)
	}
	return 1
}

// reset installs a cold starting state for the given original-variable
// bounds: structural variables rest at their lower bound, each row gets its
// slack/surplus as the basic variable when that is feasible and an artificial
// (signed to match the residual) otherwise, and the eta file restarts empty.
// Calling reset on a previously used state is arithmetic-identical to a
// fresh newRevised + reset, which is what keeps Solver.SolveCold byte-equal
// to lp.Solve.
func (rv *revised) reset(lower, upper []float64) {
	nOrig := rv.cs.nOrig
	for j := 0; j < nOrig; j++ {
		rv.lo[j], rv.up[j] = lower[j], upper[j]
	}
	for j := nOrig; j < rv.n; j++ {
		rv.lo[j], rv.up[j] = 0, math.Inf(1)
	}
	for j := rv.n; j < rv.width; j++ {
		rv.lo[j], rv.up[j] = 0, 0 // opened per-row below when used
	}
	for j := 0; j < rv.width; j++ {
		rv.inBasis[j] = false
		rv.atUpper[j] = false
	}
	rv.iters = 0

	// Row residuals at the all-at-lower resting point.
	res := rv.wrk
	copy(res, rv.b)
	for j := 0; j < nOrig; j++ {
		if lower[j] != 0 {
			rv.cs.scatterAdd(j, -lower[j], res)
		}
	}
	for i := 0; i < rv.m; i++ {
		rv.artUsed[i] = false
		rv.artSign[i] = 1
		slack := rv.cs.slackCol[i]
		switch rv.cs.sense[i] {
		case LE:
			if res[i] >= 0 {
				rv.basis[i] = slack
				rv.xB[i] = res[i]
				continue
			}
		case GE:
			if res[i] <= 0 {
				rv.basis[i] = slack
				rv.xB[i] = -res[i]
				continue
			}
		}
		// Slack infeasible (or EQ row): seat an artificial whose sign makes
		// it start at |residual| >= 0, replacing the dense tableau's
		// row-sign normalization.
		if res[i] < 0 {
			rv.artSign[i] = -1
		}
		rv.basis[i] = rv.n + i
		rv.xB[i] = res[i] * rv.artSign[i]
		rv.artUsed[i] = true
		rv.up[rv.n+i] = math.Inf(1)
	}
	for _, col := range rv.basis {
		rv.inBasis[col] = true
	}
	// The initial basis is diagonal (±1 singletons): its factorization is a
	// sign eta per negative diagonal and nothing else, built directly
	// without a counted refactorization.
	rv.ef.reset()
	for i := 0; i < rv.m; i++ {
		col := rv.basis[i]
		diag := 1.0
		if col >= rv.n {
			diag = rv.artSign[i]
		} else if rv.cs.sense[i] == GE {
			diag = -1 // surplus column
		}
		if diag != 1 {
			rv.ef.pushSingleton(i, 1/diag)
		}
	}
	rv.lastFact = rv.ef.count()
	rv.noteEta()
}

// refactor rebuilds the eta file from the current basis columns, processed
// sparsest-first (an approximate triangularization that keeps fill low for
// the near-diagonal bases scheduling LPs produce). Each column FTRANs
// through the etas built so far and pivots on the still-unassigned row with
// the largest magnitude (partial pivoting); the basis array is then
// relabeled to the chosen row assignment — the basis is a set of columns,
// and the row pairing is bookkeeping the caller refreshes by recomputing
// the basic values. A best pivot below singularTol means the basis is
// numerically singular and the caller must recover (retry cold, or fall
// back from a warm solve).
func (rv *revised) refactor() bool {
	rv.stats.Refactorizations++
	rv.ef.reset()
	if rv.factOrder == nil {
		rv.factOrder = make([]int, rv.m)
		rv.factBasis = make([]int, rv.m)
		rv.rowUsed = make([]bool, rv.m)
	}
	order := rv.factOrder
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rv.colNNZ(rv.basis[order[a]]) < rv.colNNZ(rv.basis[order[b]])
	})
	for i := range rv.rowUsed {
		rv.rowUsed[i] = false
	}
	w := rv.col
	for _, pos := range order {
		j := rv.basis[pos]
		for i := range w {
			w[i] = 0
		}
		rv.colScatterAdd(j, 1, w)
		rv.ef.ftran(w)
		r := -1
		best := singularTol
		for i := 0; i < rv.m; i++ {
			if rv.rowUsed[i] {
				continue
			}
			if a := math.Abs(w[i]); a > best {
				best = a
				r = i
			}
		}
		if r < 0 {
			return false
		}
		rv.ef.push(r, w)
		rv.rowUsed[r] = true
		rv.factBasis[r] = j
	}
	copy(rv.basis, rv.factBasis)
	rv.lastFact = rv.ef.count()
	rv.noteEta()
	return true
}

// refactorAndRecompute refactorizes and rebuilds xB from the new
// factorization.
func (rv *revised) refactorAndRecompute() bool {
	if !rv.refactor() {
		return false
	}
	rv.computeXB()
	return true
}

// computeXB recomputes the basic values from scratch: xB = B^-1 (b - N x_N)
// with every nonbasic column at its resting bound. One FTRAN, used after
// refactorization and at the start of each warm re-solve.
func (rv *revised) computeXB() {
	res := rv.wrk
	copy(res, rv.b)
	for j := 0; j < rv.n; j++ {
		if rv.inBasis[j] {
			continue
		}
		rest := rv.lo[j]
		if rv.atUpper[j] {
			rest = rv.up[j]
		}
		if rest != 0 {
			rv.cs.scatterAdd(j, -rest, res)
		}
	}
	// Artificial columns always rest at zero.
	rv.ef.ftran(res)
	copy(rv.xB, res)
}

// noteEta records the eta-file length in the peak statistic.
func (rv *revised) noteEta() {
	if n := rv.ef.entries(); n > rv.stats.EtaPeak {
		rv.stats.EtaPeak = n
	}
}

// solveCold runs the two-phase primal simplex from the state reset
// installed. On a numeric failure (singular refactorization) it rebuilds the
// initial basis and retries once before giving up with IterationLimit.
func (rv *revised) solveCold(lower, upper []float64) *Solution {
	rv.reset(lower, upper)
	sol := rv.runCold()
	if sol.Status == numericFailure {
		rv.reset(lower, upper)
		sol = rv.runCold()
		if sol.Status == numericFailure {
			sol = &Solution{Status: IterationLimit, Iters: rv.iters}
		}
	}
	return sol
}

// runCold is one attempt at the two-phase solve.
func (rv *revised) runCold() *Solution {
	anyArt := false
	for i := 0; i < rv.m; i++ {
		if rv.artUsed[i] {
			anyArt = true
			break
		}
	}
	if anyArt {
		ph1 := rv.cPh1
		for j := range ph1 {
			ph1[j] = 0
		}
		for i := 0; i < rv.m; i++ {
			if rv.artUsed[i] {
				ph1[rv.n+i] = -1
			}
		}
		status, obj := rv.simplex(ph1)
		if status == numericFailure {
			return &Solution{Status: numericFailure}
		}
		if status == IterationLimit {
			return &Solution{Status: IterationLimit, Iters: rv.iters}
		}
		if obj < -feasTol {
			return &Solution{Status: Infeasible, Iters: rv.iters}
		}
		if !rv.driveOutArtificials() {
			return &Solution{Status: numericFailure}
		}
		// Forbid artificials from re-entering or growing: clamp to zero. A
		// still-basic artificial (value 0) keeps acting as its row's
		// identity column, but the zero upper bound makes the phase-2 ratio
		// test block any move that would lift it — the same clamp the dense
		// tableau applies, without which phase 2 could silently relax an
		// equality row.
		for i := 0; i < rv.m; i++ {
			if rv.artUsed[i] {
				rv.up[rv.n+i] = 0
			}
		}
	}
	status, obj := rv.simplex(rv.c)
	if status == numericFailure {
		return &Solution{Status: numericFailure}
	}
	if status != Optimal {
		return &Solution{Status: status, Iters: rv.iters}
	}
	return rv.extract(obj)
}

// driveOutArtificials swaps basic artificials (at value zero after phase 1)
// for nonbasic structural/slack columns resting at their lower bound where a
// nonzero pivot exists, shrinking the set of clamped identity columns phase 2
// must carry. The swap is degenerate — the point does not move.
func (rv *revised) driveOutArtificials() bool {
	for i := 0; i < rv.m; i++ {
		if rv.basis[i] < rv.n {
			continue
		}
		rho := rv.rho
		for k := range rho {
			rho[k] = 0
		}
		rho[i] = 1
		rv.ef.btran(rho)
		for j := 0; j < rv.n; j++ {
			if rv.inBasis[j] || rv.atUpper[j] {
				continue
			}
			if math.Abs(rv.cs.dot(j, rho)) <= eps {
				continue
			}
			w := rv.col
			for k := range w {
				w[k] = 0
			}
			rv.cs.scatterAdd(j, 1, w)
			rv.ef.ftran(w)
			if math.Abs(w[i]) <= eps {
				continue // disagrees with rho under roundoff; try another column
			}
			rv.ef.push(i, w)
			rv.noteEta()
			old := rv.basis[i]
			rv.basis[i] = j
			rv.inBasis[j] = true
			rv.inBasis[old] = false
			rv.atUpper[old] = false
			// The swap must not move the point: the entering column keeps
			// the resting value it held as a nonbasic variable (which is not
			// zero here, unlike the shift-normalized dense tableau).
			rv.xB[i] = rv.lo[j]
			break
		}
	}
	return true
}

// objValue evaluates obj at the current point: basic values plus nonbasic
// columns resting at nonzero bounds.
func (rv *revised) objValue(obj []float64) float64 {
	v := 0.0
	for i := 0; i < rv.m; i++ {
		v += obj[rv.basis[i]] * rv.xB[i]
	}
	for j := 0; j < rv.width; j++ {
		if rv.inBasis[j] || obj[j] == 0 {
			continue
		}
		if rv.atUpper[j] {
			v += obj[j] * rv.up[j]
		} else if rv.lo[j] != 0 {
			v += obj[j] * rv.lo[j]
		}
	}
	return v
}

// simplex maximizes obj from the current basis with the bounded-variable
// primal rules: a nonbasic-at-lower column enters on positive reduced cost,
// a nonbasic-at-upper column on negative; the ratio test limits the move by
// basic variables hitting either bound or the entering variable flipping to
// its opposite bound. Pricing is Devex (steepest-edge approximation over a
// reference framework) with a Bland's-rule fallback after blandTrip
// iterations to guarantee termination under degeneracy. Each iteration costs
// one BTRAN for the multipliers, one sparse pricing pass, one FTRAN for the
// entering column, and (on a pivot) one BTRAN'd pivot row for the Devex
// update — O(nnz + eta fill) instead of the dense tableau's O(m·n).
func (rv *revised) simplex(obj []float64) (Status, float64) {
	maxIters := 20000 + 200*(rv.m+rv.width)
	rv.devexInit()
	for iter := 0; ; iter++ {
		if rv.iters++; rv.iters > maxIters {
			return IterationLimit, 0
		}
		if rv.ef.count()-rv.lastFact > refactorEvery {
			if !rv.refactorAndRecompute() {
				return numericFailure, 0
			}
		}
		// Simplex multipliers y = c_B B^-1.
		y := rv.y
		for i := 0; i < rv.m; i++ {
			y[i] = obj[rv.basis[i]]
		}
		rv.ef.btran(y)

		useBland := iter > blandTrip
		enter := -1
		bestScore := 0.0
		for j := 0; j < rv.width; j++ {
			if rv.inBasis[j] {
				continue
			}
			if !(rv.up[j]-rv.lo[j] > eps) {
				continue // fixed (includes clamped artificials): cannot move
			}
			rc := obj[j] - rv.colDot(j, y)
			// Improving directions: increase from lower (rc > 0) or decrease
			// from upper (rc < 0).
			if !rv.atUpper[j] && rc > eps {
				// eligible
			} else if rv.atUpper[j] && rc < -eps {
				// eligible
			} else {
				continue
			}
			if useBland {
				enter = j
				break
			}
			if score := rc * rc / rv.dvx[j]; score > bestScore {
				bestScore = score
				enter = j
			}
		}
		if enter < 0 {
			return Optimal, rv.objValue(obj)
		}

		// FTRAN the entering column.
		w := rv.col
		for i := range w {
			w[i] = 0
		}
		rv.colScatterAdd(enter, 1, w)
		rv.ef.ftran(w)

		// Direction: +1 when increasing from lower, -1 when decreasing from
		// upper. Basic variable i changes by -dir*w_i per unit.
		dir := 1.0
		if rv.atUpper[enter] {
			dir = -1
		}
		limit := rv.up[enter] - rv.lo[enter] // bound-flip distance (may be +Inf)
		leave := -1
		leaveAtUpper := false
		for i := 0; i < rv.m; i++ {
			d := dir * w[i]
			var ratio float64
			var hitsUpper bool
			switch {
			case d > eps: // basic value decreases toward its lower bound
				ratio = (rv.xB[i] - rv.lo[rv.basis[i]]) / d
			case d < -eps: // basic value increases toward its upper bound
				ub := rv.up[rv.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				ratio = (ub - rv.xB[i]) / (-d)
				hitsUpper = true
			default:
				continue
			}
			if ratio < limit-eps || (ratio < limit+eps && leave >= 0 && rv.basis[i] < rv.basis[leave]) {
				limit = ratio
				leave = i
				leaveAtUpper = hitsUpper
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded, 0
		}
		if limit < 0 {
			limit = 0
		}

		if leave < 0 {
			// Bound flip: the entering variable travels to its opposite
			// bound without any basic variable blocking.
			for i := 0; i < rv.m; i++ {
				if w[i] == 0 {
					continue
				}
				rv.xB[i] -= dir * w[i] * limit
				if lb := rv.lo[rv.basis[i]]; rv.xB[i] < lb && rv.xB[i] > lb-feasTol {
					rv.xB[i] = lb
				}
			}
			rv.atUpper[enter] = !rv.atUpper[enter]
			continue
		}

		piv := w[leave]
		if math.Abs(piv) < etaPivTol && rv.ef.count() > rv.lastFact {
			// Numerically risky update on a stale factorization: rebuild and
			// re-derive this iteration from fresh numbers.
			if !rv.refactorAndRecompute() {
				return numericFailure, 0
			}
			continue
		}

		// Devex update needs the pivot row of the outgoing basis inverse.
		rho := rv.rho
		for i := range rho {
			rho[i] = 0
		}
		rho[leave] = 1
		rv.ef.btran(rho)
		rv.devexUpdate(enter, leave, piv, rho)

		// Move the point and swap the basis.
		newVal := rv.lo[enter] + dir*limit
		if rv.atUpper[enter] {
			newVal = rv.up[enter] + dir*limit // dir = -1: up - limit
		}
		for i := 0; i < rv.m; i++ {
			if w[i] == 0 {
				continue
			}
			rv.xB[i] -= dir * w[i] * limit
			if lb := rv.lo[rv.basis[i]]; rv.xB[i] < lb && rv.xB[i] > lb-feasTol {
				rv.xB[i] = lb
			}
		}
		rv.ef.push(leave, w)
		rv.noteEta()
		leavingCol := rv.basis[leave]
		rv.basis[leave] = enter
		rv.inBasis[enter] = true
		rv.atUpper[enter] = false
		rv.inBasis[leavingCol] = false
		rv.atUpper[leavingCol] = leaveAtUpper
		rv.xB[leave] = newVal
		rv.stats.PrimalPivots++
	}
}

// devexInit resets the Devex reference framework to the current basis: every
// weight returns to one, making the first pricing pass plain Dantzig.
func (rv *revised) devexInit() {
	for j := range rv.dvx {
		rv.dvx[j] = 1
	}
}

// devexUpdate maintains the Devex reference weights after a pivot: each
// nonbasic column's weight rises to track its steepest-edge norm estimate
// through the basis change, and the leaving variable gets the entering
// column's transformed weight. Weights that outgrow dvxReset reset the whole
// framework (the estimates have drifted too far from the reference basis to
// stay meaningful).
func (rv *revised) devexUpdate(enter, leave int, piv float64, rho []float64) {
	wq := rv.dvx[enter]
	pivSq := piv * piv
	maxW := 0.0
	for j := 0; j < rv.width; j++ {
		if rv.inBasis[j] || j == enter {
			continue
		}
		if !(rv.up[j]-rv.lo[j] > eps) {
			continue
		}
		arj := rv.colDot(j, rho)
		if arj == 0 {
			continue
		}
		if cand := arj * arj / pivSq * wq; cand > rv.dvx[j] {
			rv.dvx[j] = cand
		}
		if rv.dvx[j] > maxW {
			maxW = rv.dvx[j]
		}
	}
	nw := wq / pivSq
	if nw < 1 {
		nw = 1
	}
	rv.dvx[rv.basis[leave]] = nw
	if maxW > dvxReset || nw > dvxReset {
		rv.devexInit()
	}
}

// extract materializes the current optimal basis into a Solution, snapping
// values near the current bounds onto them. In lean mode the diagnostic
// fields (duals, reduced costs, row activity) are skipped — the
// branch-and-bound hot path never reads them.
func (rv *revised) extract(obj float64) *Solution {
	nOrig := rv.cs.nOrig
	x := make([]float64, nOrig)
	for j := 0; j < nOrig; j++ {
		if rv.atUpper[j] {
			x[j] = rv.up[j]
		} else {
			x[j] = rv.lo[j]
		}
	}
	for i, col := range rv.basis {
		if col < nOrig {
			x[col] = rv.xB[i]
		}
	}
	for j := 0; j < nOrig; j++ {
		if math.Abs(x[j]-rv.lo[j]) < feasTol {
			x[j] = rv.lo[j]
		}
		if !math.IsInf(rv.up[j], 1) && math.Abs(x[j]-rv.up[j]) < feasTol {
			x[j] = rv.up[j]
		}
	}
	if rv.lean {
		return &Solution{Status: Optimal, X: x, Objective: obj, Iters: rv.iters}
	}
	// Simplex multipliers for duals and reduced costs: for a maximization
	// the shadow price of a <= or >= row is y_r; equality rows report NaN
	// (their artificial columns are destroyed during phase 1, matching the
	// dense tableau's contract).
	y := rv.y
	for i := 0; i < rv.m; i++ {
		y[i] = rv.c[rv.basis[i]]
	}
	rv.ef.btran(y)
	duals := make([]float64, rv.m)
	for r := 0; r < rv.m; r++ {
		if rv.cs.sense[r] == EQ {
			duals[r] = math.NaN()
			continue
		}
		z := y[r]
		if math.Abs(z) < feasTol {
			z = 0
		}
		duals[r] = z
	}
	rc := make([]float64, nOrig)
	for j := 0; j < nOrig; j++ {
		if rv.inBasis[j] {
			continue
		}
		d := rv.c[j] - rv.cs.dot(j, y)
		if math.Abs(d) < feasTol {
			d = 0
		}
		rc[j] = d
	}
	activity, slacks := rowActivity(rv.p, x)
	return &Solution{
		Status:       Optimal,
		X:            x,
		Objective:    obj,
		Iters:        rv.iters,
		Duals:        duals,
		ReducedCosts: rc,
		RowActivity:  activity,
		Slacks:       slacks,
	}
}
