package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (tol %g)", what, got, want, tol)
	}
}

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if viol := p.FirstViolation(sol.X, 1e-6); viol != "" {
		t.Fatalf("solution infeasible: %s", viol)
	}
	return sol
}

func TestSimple2D(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj 12.
	p := &Problem{}
	x := p.AddVar(3, 0, Inf, "x")
	y := p.AddVar(2, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 4, "r1")
	p.AddConstraint([]int{x, y}, []float64{1, 3}, LE, 6, "r2")
	sol := solveOK(t, p)
	approx(t, sol.Objective, 12, 1e-8, "objective")
	approx(t, sol.X[x], 4, 1e-8, "x")
	approx(t, sol.X[y], 0, 1e-8, "y")
}

func TestInteriorOptimum(t *testing.T) {
	// max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj 8/3.
	p := &Problem{}
	x := p.AddVar(1, 0, Inf, "x")
	y := p.AddVar(1, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{2, 1}, LE, 4, "")
	p.AddConstraint([]int{x, y}, []float64{1, 2}, LE, 4, "")
	sol := solveOK(t, p)
	approx(t, sol.Objective, 8.0/3, 1e-8, "objective")
	approx(t, sol.X[x], 4.0/3, 1e-8, "x")
}

func TestEqualityConstraint(t *testing.T) {
	// max x + 2y s.t. x + y = 3, y <= 2 -> y=2, x=1, obj 5.
	p := &Problem{}
	x := p.AddVar(1, 0, Inf, "x")
	y := p.AddVar(2, 0, 2, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, EQ, 3, "")
	sol := solveOK(t, p)
	approx(t, sol.Objective, 5, 1e-8, "objective")
	approx(t, sol.X[y], 2, 1e-8, "y")
}

func TestGEConstraint(t *testing.T) {
	// min x+y (max -x-y) s.t. x + 2y >= 4, 3x + y >= 6.
	// Optimum at intersection: x=8/5, y=6/5, cost 14/5.
	p := &Problem{}
	x := p.AddVar(-1, 0, Inf, "x")
	y := p.AddVar(-1, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 2}, GE, 4, "")
	p.AddConstraint([]int{x, y}, []float64{3, 1}, GE, 6, "")
	sol := solveOK(t, p)
	approx(t, sol.Objective, -14.0/5, 1e-8, "objective")
	approx(t, sol.X[x], 8.0/5, 1e-8, "x")
	approx(t, sol.X[y], 6.0/5, 1e-8, "y")
}

func TestInfeasible(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(1, 0, Inf, "x")
	p.AddConstraint([]int{x}, []float64{1}, LE, 1, "")
	p.AddConstraint([]int{x}, []float64{1}, GE, 2, "")
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(1, 0, Inf, "x")
	y := p.AddVar(0, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, -1}, LE, 1, "")
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestLowerBoundShift(t *testing.T) {
	// max -x s.t. x >= 2 via bounds -> x=2, obj -2.
	p := &Problem{}
	x := p.AddVar(-1, 2, Inf, "x")
	sol := solveOK(t, p)
	approx(t, sol.Objective, -2, 1e-8, "objective")
	approx(t, sol.X[x], 2, 1e-8, "x")
}

func TestUpperBoundOnly(t *testing.T) {
	p := &Problem{}
	_ = p.AddVar(5, 0, 3, "x")
	_ = p.AddVar(4, 1, 2, "y")
	sol := solveOK(t, p)
	approx(t, sol.Objective, 5*3+4*2, 1e-8, "objective")
}

func TestNegativeRHS(t *testing.T) {
	// max -x - y s.t. -x - y <= -3 (i.e., x + y >= 3).
	p := &Problem{}
	x := p.AddVar(-1, 0, Inf, "x")
	y := p.AddVar(-1, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{-1, -1}, LE, -3, "")
	sol := solveOK(t, p)
	approx(t, sol.Objective, -3, 1e-8, "objective")
}

func TestDegenerate(t *testing.T) {
	// Classic degenerate problem: multiple constraints active at the origin.
	p := &Problem{}
	x := p.AddVar(1, 0, Inf, "x")
	y := p.AddVar(1, 0, Inf, "y")
	z := p.AddVar(1, 0, Inf, "z")
	p.AddConstraint([]int{x, y, z}, []float64{1, 1, 1}, LE, 1, "")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 1, "")
	p.AddConstraint([]int{x}, []float64{1}, LE, 1, "")
	p.AddConstraint([]int{y, z}, []float64{1, 1}, LE, 1, "")
	sol := solveOK(t, p)
	approx(t, sol.Objective, 1, 1e-8, "objective")
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows create a redundant artificial in phase 1.
	p := &Problem{}
	x := p.AddVar(2, 0, Inf, "x")
	y := p.AddVar(1, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, EQ, 2, "")
	p.AddConstraint([]int{x, y}, []float64{2, 2}, EQ, 4, "")
	sol := solveOK(t, p)
	approx(t, sol.Objective, 4, 1e-8, "objective")
	approx(t, sol.X[x], 2, 1e-8, "x")
}

func TestKnapsackRelaxation(t *testing.T) {
	// Fractional knapsack: values 60,100,120; weights 10,20,30; cap 50.
	// LP optimum = 60 + 100 + (20/30)*120 = 240.
	p := &Problem{}
	for i, v := range []float64{60, 100, 120} {
		p.AddVar(v, 0, 1, string(rune('a'+i)))
	}
	p.AddConstraint([]int{0, 1, 2}, []float64{10, 20, 30}, LE, 50, "cap")
	sol := solveOK(t, p)
	approx(t, sol.Objective, 240, 1e-8, "objective")
}

func TestValidateErrors(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(1, 0, Inf, "x")
	p.AddConstraint([]int{x}, []float64{1}, LE, 1, "")
	_ = x
	p.Lower[0] = 2
	p.Upper[0] = 1
	if _, err := Solve(p); err == nil {
		t.Fatal("expected bound-ordering error")
	}
	p.Lower[0] = math.Inf(-1)
	p.Upper[0] = Inf
	if _, err := Solve(p); err == nil {
		t.Fatal("expected free-variable error")
	}
	q := &Problem{Objective: []float64{math.NaN()}, Lower: []float64{0}, Upper: []float64{1}}
	if _, err := Solve(q); err == nil {
		t.Fatal("expected NaN objective error")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(1, 0, 5, "x")
	p.AddConstraint([]int{x}, []float64{1}, LE, 3, "")
	q := p.Clone()
	q.Upper[0] = 1
	q.Constraints[0].RHS = 0.5
	sol := solveOK(t, p)
	approx(t, sol.Objective, 3, 1e-8, "original objective after clone mutation")
}

func TestEvalAndFeasible(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(2, 0, 10, "x")
	y := p.AddVar(3, 0, 10, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 5, "sum")
	if got := p.Eval([]float64{1, 2}); got != 8 {
		t.Fatalf("Eval = %g, want 8", got)
	}
	if !p.Feasible([]float64{2, 3}, 1e-9) {
		t.Fatal("point should be feasible")
	}
	if p.Feasible([]float64{4, 3}, 1e-9) {
		t.Fatal("point should violate the sum constraint")
	}
	if p.Feasible([]float64{-1, 0}, 1e-9) {
		t.Fatal("point should violate the lower bound")
	}
}

// TestRandomBoundedLPs property: for random LPs with box bounds and <=
// constraints with non-negative coefficients (always feasible at the lower
// bounds), the solver returns a feasible point whose objective is at least
// that of any random feasible candidate we construct.
func TestRandomBoundedLPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(4)
		p := &Problem{}
		for j := 0; j < n; j++ {
			p.AddVar(rng.Float64()*10-5, 0, 1+rng.Float64()*4, "")
		}
		for r := 0; r < m; r++ {
			idx := make([]int, n)
			coef := make([]float64, n)
			for j := 0; j < n; j++ {
				idx[j] = j
				coef[j] = rng.Float64() * 3
			}
			p.AddConstraint(idx, coef, LE, 1+rng.Float64()*10, "")
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		if !p.Feasible(sol.X, 1e-6) {
			return false
		}
		// Random feasible candidate: scale down a random point until feasible.
		cand := make([]float64, n)
		for j := range cand {
			cand[j] = rng.Float64() * p.Upper[j]
		}
		for s := 0; s < 30 && !p.Feasible(cand, 1e-9); s++ {
			for j := range cand {
				cand[j] *= 0.5
			}
		}
		if !p.Feasible(cand, 1e-9) {
			return true // could not build a candidate; nothing to compare
		}
		return sol.Objective >= p.Eval(cand)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomLPsDualityGapFree property: resolving the same LP twice gives the
// same objective (determinism), and tightening any upper bound never
// increases the optimum.
func TestMonotoneUnderTightening(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		p := &Problem{}
		for j := 0; j < n; j++ {
			p.AddVar(rng.Float64()*5, 0, 2+rng.Float64()*3, "")
		}
		idx := make([]int, n)
		coef := make([]float64, n)
		for j := 0; j < n; j++ {
			idx[j] = j
			coef[j] = 0.5 + rng.Float64()
		}
		p.AddConstraint(idx, coef, LE, 4+rng.Float64()*5, "")
		s1, err := Solve(p)
		if err != nil || s1.Status != Optimal {
			return false
		}
		s2, err := Solve(p)
		if err != nil || s2.Status != Optimal {
			return false
		}
		if math.Abs(s1.Objective-s2.Objective) > 1e-9 {
			return false
		}
		q := p.Clone()
		j := rng.Intn(n)
		q.Upper[j] = q.Upper[j] / 2
		s3, err := Solve(q)
		if err != nil || s3.Status != Optimal {
			return false
		}
		return s3.Objective <= s1.Objective+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("sense strings wrong")
	}
	if Sense(42).String() == "" {
		t.Fatal("unknown sense should still print")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterationLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestLargerDense(t *testing.T) {
	// Transportation-style LP with known optimum: 3 supplies, 4 demands.
	supply := []float64{20, 30, 25}
	demand := []float64{10, 25, 15, 25}
	cost := [][]float64{
		{2, 3, 1, 4},
		{5, 4, 8, 1},
		{5, 6, 7, 8},
	}
	p := &Problem{}
	idx := make([][]int, 3)
	for i := range idx {
		idx[i] = make([]int, 4)
		for j := 0; j < 4; j++ {
			idx[i][j] = p.AddVar(-cost[i][j], 0, Inf, "")
		}
	}
	for i := 0; i < 3; i++ {
		coef := []float64{1, 1, 1, 1}
		p.AddConstraint(idx[i], coef, LE, supply[i], "")
	}
	for j := 0; j < 4; j++ {
		rows := []int{idx[0][j], idx[1][j], idx[2][j]}
		p.AddConstraint(rows, []float64{1, 1, 1}, EQ, demand[j], "")
	}
	sol := solveOK(t, p)
	// Total shipped must equal total demand.
	total := 0.0
	for _, v := range sol.X {
		total += v
	}
	approx(t, total, 75, 1e-6, "total shipment")
	if sol.Objective > 0 {
		t.Fatalf("cost must be positive, got objective %g", sol.Objective)
	}
}

func TestDualsKnapsackRelaxation(t *testing.T) {
	// Fractional knapsack: cap 50, items (60,10), (100,20), (120,30).
	// Optimal duals: cap shadow price = 120/30 = 4 (marginal item value
	// density); item bounds absorb the rest.
	p := &Problem{}
	for i, v := range []float64{60, 100, 120} {
		p.AddVar(v, 0, 1, string(rune('a'+i)))
	}
	p.AddConstraint([]int{0, 1, 2}, []float64{10, 20, 30}, LE, 50, "cap")
	sol := solveOK(t, p)
	if len(sol.Duals) != 1 {
		t.Fatalf("duals = %v", sol.Duals)
	}
	approx(t, sol.Duals[0], 4, 1e-8, "cap shadow price")
	// Dual predicts the objective change for a small RHS bump.
	q := p.Clone()
	q.Constraints[0].RHS = 51
	sol2 := solveOK(t, q)
	approx(t, sol2.Objective-sol.Objective, 4, 1e-8, "marginal value")
}

func TestDualsSlackConstraintZero(t *testing.T) {
	// A constraint with slack at the optimum has zero shadow price
	// (complementary slackness).
	p := &Problem{}
	x := p.AddVar(1, 0, 2, "x")
	p.AddConstraint([]int{x}, []float64{1}, LE, 100, "loose")
	sol := solveOK(t, p)
	if sol.Duals[0] != 0 {
		t.Fatalf("loose constraint dual = %g, want 0", sol.Duals[0])
	}
}

func TestDualsGEConstraint(t *testing.T) {
	// min x (max -x) s.t. x >= 3: dual of the GE row is d(-x*)/d(3) = -1.
	p := &Problem{}
	x := p.AddVar(-1, 0, Inf, "x")
	p.AddConstraint([]int{x}, []float64{1}, GE, 3, "floor")
	sol := solveOK(t, p)
	approx(t, sol.Duals[0], -1, 1e-8, "GE dual")
	q := p.Clone()
	q.Constraints[0].RHS = 4
	sol2 := solveOK(t, q)
	approx(t, sol2.Objective-sol.Objective, sol.Duals[0], 1e-8, "GE marginal")
}

func TestDualsEqualityNaN(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(1, 0, 5, "x")
	p.AddConstraint([]int{x}, []float64{1}, EQ, 2, "pin")
	sol := solveOK(t, p)
	if !math.IsNaN(sol.Duals[0]) {
		t.Fatalf("equality dual = %g, want NaN (not recoverable)", sol.Duals[0])
	}
}

func TestDualsNegativeRHSFlip(t *testing.T) {
	// max -x - y s.t. -x - y <= -3 (flipped internally): shadow price of
	// relaxing the RHS by +1 (allowing x+y >= 2) is +1.
	p := &Problem{}
	x := p.AddVar(-1, 0, Inf, "x")
	y := p.AddVar(-1, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{-1, -1}, LE, -3, "")
	sol := solveOK(t, p)
	q := p.Clone()
	q.Constraints[0].RHS = -2
	sol2 := solveOK(t, q)
	approx(t, sol2.Objective-sol.Objective, sol.Duals[0], 1e-8, "flipped-row marginal")
}

func TestBoundFlipPath(t *testing.T) {
	// max x + 0.1y s.t. x + y <= 10, x <= 3, y <= 4. The optimum x=3, y=4
	// requires nonbasic variables to finish at their upper bounds.
	p := &Problem{}
	x := p.AddVar(1, 0, 3, "x")
	y := p.AddVar(0.1, 0, 4, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 10, "sum")
	sol := solveOK(t, p)
	approx(t, sol.X[x], 3, 1e-9, "x at upper")
	approx(t, sol.X[y], 4, 1e-9, "y at upper")
	approx(t, sol.Objective, 3.4, 1e-9, "objective")
}

func TestEnterFromUpperBound(t *testing.T) {
	// Crafted so a variable first flips to its upper bound and later must
	// re-enter from above: max 3x + y s.t. x + y <= 4, x - y <= 1,
	// x in [0,2], y in [0,3]. Optimum x=2, y=2, obj 8 — hit only if the
	// solver can move variables off their upper bounds.
	p := &Problem{}
	x := p.AddVar(3, 0, 2, "x")
	y := p.AddVar(1, 0, 3, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 4, "")
	p.AddConstraint([]int{x, y}, []float64{1, -1}, LE, 1, "")
	sol := solveOK(t, p)
	approx(t, sol.Objective, 8, 1e-8, "objective")
	approx(t, sol.X[x], 2, 1e-8, "x")
	approx(t, sol.X[y], 2, 1e-8, "y")
}

func TestManyBinariesFast(t *testing.T) {
	// The motivating case for implicit bounds: hundreds of 0-1 variables
	// must not blow the row count. Fractional knapsack over 400 binaries.
	p := &Problem{}
	n := 400
	idx := make([]int, n)
	coef := make([]float64, n)
	for j := 0; j < n; j++ {
		p.AddVar(float64(j%17)+1, 0, 1, "")
		idx[j] = j
		coef[j] = float64(j%5) + 1
	}
	p.AddConstraint(idx, coef, LE, 120, "cap")
	sol := solveOK(t, p)
	if sol.Objective <= 0 {
		t.Fatalf("objective = %g", sol.Objective)
	}
	if sol.Iters > 2000 {
		t.Fatalf("iterations = %d; bounded simplex should finish quickly", sol.Iters)
	}
}

func TestMixedBoundsWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 5, x in [0,3], y in [0,4]:
	// optimum x=3, y=2, cost 12.
	p := &Problem{}
	x := p.AddVar(-2, 0, 3, "x")
	y := p.AddVar(-3, 0, 4, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, GE, 5, "")
	sol := solveOK(t, p)
	approx(t, sol.Objective, -12, 1e-8, "objective")
	approx(t, sol.X[x], 3, 1e-8, "x")
	approx(t, sol.X[y], 2, 1e-8, "y")
}

func TestUpperBoundedEquality(t *testing.T) {
	// x + y = 6 with x in [0,2], y in [0,5]: feasible band requires x >= 1.
	// max 5x + y -> x=2, y=4, obj 14.
	p := &Problem{}
	x := p.AddVar(5, 0, 2, "x")
	y := p.AddVar(1, 0, 5, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, EQ, 6, "")
	sol := solveOK(t, p)
	approx(t, sol.Objective, 14, 1e-8, "objective")
	approx(t, sol.X[x], 2, 1e-8, "x")
}

func TestInfeasibleByBounds(t *testing.T) {
	// x <= 1, y <= 1 but x + y >= 3: infeasible through bounds alone.
	p := &Problem{}
	x := p.AddVar(1, 0, 1, "x")
	y := p.AddVar(1, 0, 1, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, GE, 3, "")
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

// Property: permuting the variable order never changes the optimal
// objective (solver invariance).
func TestVariablePermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		obj := make([]float64, n)
		up := make([]float64, n)
		coef := make([]float64, n)
		for j := 0; j < n; j++ {
			obj[j] = rng.Float64()*8 - 2
			up[j] = 0.5 + rng.Float64()*3
			coef[j] = 0.2 + rng.Float64()*2
		}
		rhs := 1 + rng.Float64()*6

		build := func(perm []int) *Problem {
			p := &Problem{}
			idx := make([]int, n)
			cf := make([]float64, n)
			for pos, j := range perm {
				p.AddVar(obj[j], 0, up[j], "")
				idx[pos] = pos
				cf[pos] = coef[j]
			}
			p.AddConstraint(idx, cf, LE, rhs, "")
			return p
		}
		ident := make([]int, n)
		for j := range ident {
			ident[j] = j
		}
		perm := rng.Perm(n)
		s1, err := Solve(build(ident))
		if err != nil || s1.Status != Optimal {
			return false
		}
		s2, err := Solve(build(perm))
		if err != nil || s2.Status != Optimal {
			return false
		}
		return math.Abs(s1.Objective-s2.Objective) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling a constraint row (both sides) never changes the optimum.
func TestRowScalingInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		p := &Problem{}
		idx := make([]int, n)
		coef := make([]float64, n)
		for j := 0; j < n; j++ {
			p.AddVar(rng.Float64()*5, 0, 1+rng.Float64()*2, "")
			idx[j] = j
			coef[j] = 0.3 + rng.Float64()
		}
		rhs := 1 + rng.Float64()*4
		p.AddConstraint(idx, coef, LE, rhs, "")
		q := p.Clone()
		scale := 0.1 + rng.Float64()*20
		for j := range q.Constraints[0].Coef {
			q.Constraints[0].Coef[j] *= scale
		}
		q.Constraints[0].RHS *= scale
		s1, err := Solve(p)
		if err != nil || s1.Status != Optimal {
			return false
		}
		s2, err := Solve(q)
		if err != nil || s2.Status != Optimal {
			return false
		}
		return math.Abs(s1.Objective-s2.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
