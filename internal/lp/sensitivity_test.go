package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestReducedCostsSimple2D checks the textbook signs: at the optimum of
// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, variable x is basic at 4 (rc 0)
// and y is nonbasic at its lower bound with rc = 2 - 3 = -1 (entering y would
// displace x at a rate of 1 on the binding first row).
func TestReducedCostsSimple2D(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(3, 0, Inf, "x")
	y := p.AddVar(2, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 4, "r1")
	p.AddConstraint([]int{x, y}, []float64{1, 3}, LE, 6, "r2")
	sol := solveOK(t, p)
	approx(t, sol.ReducedCosts[x], 0, 1e-9, "rc(x)")
	approx(t, sol.ReducedCosts[y], -1, 1e-9, "rc(y)")
}

// TestSlacksAndActivity pins the activity/slack convention on a mixed-sense
// problem: binding rows report zero slack, loose rows their distance to the
// RHS on the feasible side.
func TestSlacksAndActivity(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(1, 0, Inf, "x")
	y := p.AddVar(1, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 10, "cap")   // binding
	p.AddConstraint([]int{x}, []float64{1}, GE, 2, "floor")        // loose at optimum
	p.AddConstraint([]int{x, y}, []float64{1, -1}, EQ, 4, "split") // x - y = 4
	sol := solveOK(t, p)
	// Optimum: x + y = 10 with x - y = 4 -> x = 7, y = 3.
	approx(t, sol.X[x], 7, 1e-8, "x")
	approx(t, sol.RowActivity[0], 10, 1e-8, "activity(cap)")
	approx(t, sol.Slacks[0], 0, 1e-8, "slack(cap)")
	approx(t, sol.RowActivity[1], 7, 1e-8, "activity(floor)")
	approx(t, sol.Slacks[1], 5, 1e-8, "slack(floor)")
	approx(t, sol.Slacks[2], 0, 1e-8, "slack(split)")
}

// TestReducedCostPredictsEntry verifies the economic meaning of a nonbasic
// reduced cost: raising the variable's objective coefficient past the
// breakeven point |rc| must change the optimal basis and strictly improve the
// objective, while staying below it must not.
func TestReducedCostPredictsEntry(t *testing.T) {
	build := func(cy float64) *Problem {
		p := &Problem{}
		x := p.AddVar(3, 0, Inf, "x")
		y := p.AddVar(cy, 0, Inf, "y")
		p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 4, "r1")
		p.AddConstraint([]int{x, y}, []float64{1, 3}, LE, 6, "r2")
		return p
	}
	base := solveOK(t, build(2))
	rc := base.ReducedCosts[1] // -1
	if rc >= 0 {
		t.Fatalf("rc(y) = %g, want negative", rc)
	}
	below := solveOK(t, build(2 - rc - 0.5)) // cy = 2.5, still below breakeven 3
	approx(t, below.Objective, base.Objective, 1e-8, "objective below breakeven")
	above := solveOK(t, build(2 - rc + 0.5)) // cy = 3.5, past breakeven
	if above.Objective <= base.Objective+1e-9 {
		t.Fatalf("objective %g did not improve past breakeven (base %g)", above.Objective, base.Objective)
	}
	if above.X[1] <= 1e-9 {
		t.Fatalf("y = %g, want basic after breakeven", above.X[1])
	}
}

// TestReducedCostAtUpperBound checks the sign flip for variables resting at
// their upper bound: rc >= 0 (pushing further up would improve, but the bound
// blocks it).
func TestReducedCostAtUpperBound(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(5, 0, 2, "x")
	y := p.AddVar(1, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 10, "cap")
	sol := solveOK(t, p)
	approx(t, sol.X[x], 2, 1e-9, "x at upper")
	if sol.ReducedCosts[x] < 4-1e-9 {
		t.Fatalf("rc(x) = %g, want 4 (c_x - dual(cap) = 5 - 1)", sol.ReducedCosts[x])
	}
}

// TestSensitivityFieldsConsistentRandom cross-checks the new fields on random
// bounded LPs: slacks must match a direct recomputation from X, basic
// variables must carry zero reduced cost, and every (variable, rc) pair must
// satisfy the optimality sign conventions.
func TestSensitivityFieldsConsistentRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nv := 2 + rng.Intn(4)
		p := &Problem{}
		for j := 0; j < nv; j++ {
			p.AddVar(rng.Float64()*4-1, 0, 1+rng.Float64()*3, "")
		}
		nr := 1 + rng.Intn(4)
		for r := 0; r < nr; r++ {
			idx := make([]int, 0, nv)
			coef := make([]float64, 0, nv)
			for j := 0; j < nv; j++ {
				idx = append(idx, j)
				coef = append(coef, rng.Float64()*2)
			}
			p.AddConstraint(idx, coef, LE, 1+rng.Float64()*6, "")
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue
		}
		if len(sol.ReducedCosts) != nv || len(sol.Slacks) != nr || len(sol.RowActivity) != nr {
			t.Fatalf("trial %d: field lengths %d/%d/%d for %d vars %d rows",
				trial, len(sol.ReducedCosts), len(sol.Slacks), len(sol.RowActivity), nv, nr)
		}
		for r, c := range p.Constraints {
			act := 0.0
			for j, v := range c.Coef {
				act += v * sol.X[j]
			}
			approx(t, sol.RowActivity[r], act, 1e-6, "activity recompute")
			if sol.Slacks[r] < -1e-7 {
				t.Fatalf("trial %d row %d: negative slack %g", trial, r, sol.Slacks[r])
			}
		}
		for j, rc := range sol.ReducedCosts {
			interior := sol.X[j] > p.Lower[j]+1e-7 && sol.X[j] < p.Upper[j]-1e-7
			if interior && math.Abs(rc) > 1e-6 {
				t.Fatalf("trial %d var %d: interior value %g with rc %g", trial, j, sol.X[j], rc)
			}
		}
	}
}
