// Package lp provides a sparse revised two-phase simplex solver for linear
// programs. It is the linear-algebra substrate underneath the mixed-integer
// branch-and-bound solver in package milp, which in turn solves the in-situ
// analysis scheduling models in package core.
//
// Problems are stated in the general form
//
//	maximize    c·x
//	subject to  a_r·x {<=,=,>=} b_r   for each constraint r
//	            lo_j <= x_j <= up_j   for each variable j
//
// with finite or infinite bounds. Internally the problem is converted to
// standard equality form and solved with a bounded-variable revised simplex
// over a compressed-sparse-column store, keeping the basis inverse in
// product form (an eta file with periodic refactorization) so each pivot
// costs O(nonzeros + factorization fill) instead of the dense tableau's
// O(rows × columns). Upper bounds are handled implicitly in the ratio test
// (nonbasic variables rest at either bound and may bound-flip), so the
// binary-heavy scheduling MILPs built on top pay no extra rows for their
// 0-1 variables. Pricing is Devex with a Bland's-rule fallback to guarantee
// termination under degeneracy; warm re-solves under changed bounds (the
// Solver handle) restore feasibility with a bounded-variable dual simplex.
// The retired dense tableau kernel remains available as SolveReference, the
// differential-testing oracle.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x == b
)

// String returns the conventional operator for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Inf is positive infinity, usable as an upper bound.
var Inf = math.Inf(1)

// Constraint is a single linear constraint a·x {<=,=,>=} b. Coef is indexed
// by variable and must have length equal to the problem's NumVars; sparse
// construction helpers on Problem fill the rest with zeros.
type Constraint struct {
	Coef  []float64
	Sense Sense
	RHS   float64
	Name  string
}

// Problem is a linear program in the general form documented at the package
// level. The zero value is an empty problem; use AddVar/AddConstraint to
// build it incrementally.
type Problem struct {
	// Objective holds the maximization coefficients, one per variable.
	Objective []float64
	// Lower and Upper are per-variable bounds. A missing entry defaults to
	// [0, +Inf).
	Lower []float64
	Upper []float64
	// Constraints are the linear rows.
	Constraints []Constraint
	// Names are optional variable names used in diagnostics.
	Names []string
}

// NumVars returns the number of variables in the problem.
func (p *Problem) NumVars() int { return len(p.Objective) }

// AddVar appends a variable with the given objective coefficient and bounds,
// returning its index. Existing constraints are implicitly extended with a
// zero coefficient for the new variable.
func (p *Problem) AddVar(obj, lower, upper float64, name string) int {
	p.Objective = append(p.Objective, obj)
	p.Lower = append(p.Lower, lower)
	p.Upper = append(p.Upper, upper)
	p.Names = append(p.Names, name)
	return len(p.Objective) - 1
}

// AddConstraint appends a constraint given as sparse (index, coefficient)
// pairs. Indices must refer to existing variables.
func (p *Problem) AddConstraint(idx []int, coef []float64, sense Sense, rhs float64, name string) {
	if len(idx) != len(coef) {
		panic("lp: AddConstraint index/coefficient length mismatch")
	}
	row := make([]float64, p.NumVars())
	for k, j := range idx {
		if j < 0 || j >= p.NumVars() {
			panic(fmt.Sprintf("lp: AddConstraint variable index %d out of range", j))
		}
		row[j] += coef[k]
	}
	p.Constraints = append(p.Constraints, Constraint{Coef: row, Sense: sense, RHS: rhs, Name: name})
}

// Clone returns a deep copy of the problem. The milp branch-and-bound solver
// clones the root problem at every node before tightening bounds.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		Objective:   append([]float64(nil), p.Objective...),
		Lower:       append([]float64(nil), p.Lower...),
		Upper:       append([]float64(nil), p.Upper...),
		Names:       append([]string(nil), p.Names...),
		Constraints: make([]Constraint, len(p.Constraints)),
	}
	for i, c := range p.Constraints {
		q.Constraints[i] = Constraint{
			Coef:  append([]float64(nil), c.Coef...),
			Sense: c.Sense,
			RHS:   c.RHS,
			Name:  c.Name,
		}
	}
	return q
}

// Validate checks structural consistency: coefficient row lengths, bound
// ordering, and NaN coefficients.
func (p *Problem) Validate() error {
	n := p.NumVars()
	if len(p.Lower) != n || len(p.Upper) != n {
		return fmt.Errorf("lp: bounds length %d/%d does not match %d variables", len(p.Lower), len(p.Upper), n)
	}
	for j := 0; j < n; j++ {
		if math.IsNaN(p.Objective[j]) {
			return fmt.Errorf("lp: objective coefficient of variable %d is NaN", j)
		}
		if p.Lower[j] > p.Upper[j] {
			return fmt.Errorf("lp: variable %d has lower bound %g above upper bound %g", j, p.Lower[j], p.Upper[j])
		}
		if math.IsInf(p.Lower[j], -1) {
			return fmt.Errorf("lp: variable %d has -Inf lower bound (free variables are not supported)", j)
		}
	}
	for r, c := range p.Constraints {
		if len(c.Coef) != n {
			return fmt.Errorf("lp: constraint %d has %d coefficients for %d variables", r, len(c.Coef), n)
		}
		for j, v := range c.Coef {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lp: constraint %d coefficient %d is %g", r, j, v)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d has invalid RHS %g", r, c.RHS)
		}
	}
	return nil
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64 // primal values, one per original variable
	Objective float64   // c·x at X (only meaningful when Status == Optimal)
	Iters     int       // simplex iterations across both phases

	// Duals holds the shadow price of each constraint (d objective /
	// d RHS) at the optimum, recovered from the reduced costs of the
	// slack/surplus columns. Entries for equality constraints are NaN:
	// their artificial columns are destroyed during phase 1, so their
	// multipliers are not recoverable from this tableau.
	Duals []float64

	// ReducedCosts holds, per original variable, c_j - z_j at the optimal
	// basis: zero for basic variables, <= 0 for nonbasic variables resting
	// at their lower bound and >= 0 for those at their upper bound (for
	// this maximization form). It quantifies how much the objective
	// coefficient of an unused variable would have to improve before the
	// variable enters the optimal basis — the "how far from being chosen"
	// number the explainability layer reports per schedule mode.
	ReducedCosts []float64

	// RowActivity holds a_r·x per constraint at the optimum, and Slacks the
	// distance to the RHS on the feasible side: RHS - activity for <= rows,
	// activity - RHS for >= rows, and |activity - RHS| (≈ 0) for equality
	// rows. A slack within tolerance of zero marks the row as binding.
	RowActivity []float64
	Slacks      []float64
}

// ErrNotSolved indicates the solver terminated without an optimal basis.
var ErrNotSolved = errors.New("lp: problem not solved to optimality")

const (
	eps       = 1e-9
	feasTol   = 1e-7
	blandTrip = 5000 // switch to Bland's rule after this many Dantzig pivots
)

// Solve solves the linear program and returns its solution. The returned
// error is non-nil only for structurally invalid problems; infeasible and
// unbounded models are reported through Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rv := newRevised(p)
	return rv.solveCold(p.Lower, p.Upper), nil
}

// Eval returns c·x for the problem's objective at the given point.
func (p *Problem) Eval(x []float64) float64 {
	v := 0.0
	for j, c := range p.Objective {
		v += c * x[j]
	}
	return v
}

// Feasible reports whether x satisfies all constraints and bounds of the
// problem within tol.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	return p.FirstViolation(x, tol) == ""
}

// FirstViolation returns a human-readable description of the first violated
// constraint or bound at x, or "" if x is feasible within tol.
func (p *Problem) FirstViolation(x []float64, tol float64) string {
	if len(x) != p.NumVars() {
		return fmt.Sprintf("point has %d entries for %d variables", len(x), p.NumVars())
	}
	for j := range x {
		if x[j] < p.Lower[j]-tol {
			return fmt.Sprintf("x[%d]=%g below lower bound %g", j, x[j], p.Lower[j])
		}
		if x[j] > p.Upper[j]+tol {
			return fmt.Sprintf("x[%d]=%g above upper bound %g", j, x[j], p.Upper[j])
		}
	}
	for r, c := range p.Constraints {
		lhs := 0.0
		for j, v := range c.Coef {
			lhs += v * x[j]
		}
		ok := true
		switch c.Sense {
		case LE:
			ok = lhs <= c.RHS+tol
		case GE:
			ok = lhs >= c.RHS-tol
		case EQ:
			ok = math.Abs(lhs-c.RHS) <= tol
		}
		if !ok {
			name := c.Name
			if name == "" {
				name = fmt.Sprintf("row %d", r)
			}
			return fmt.Sprintf("constraint %s violated: %g %s %g", name, lhs, c.Sense, c.RHS)
		}
	}
	return ""
}
