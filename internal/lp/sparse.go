package lp

// colStore is a compressed-sparse-column (CSC) view of the constraint matrix
// in equality form: the structural columns of the Problem followed by one
// slack (+1) or surplus (-1) singleton column per inequality row. Scheduling
// LPs are extremely sparse — each constraint touches a handful of variables —
// so the revised simplex prices and FTRANs columns in O(nnz) where the dense
// tableau paid O(rows) per column regardless of structure.
//
// The store is built once per Problem (NewSolver / Solve) and shared by every
// cold and warm solve: only variable bounds change between branch-and-bound
// nodes, never the matrix. Phase-1 artificial columns are NOT stored here;
// they are implicit ±1 singletons handled by the revised solver (colDot /
// colScatter), so the store never has to be rebuilt when artificial signs
// change between cold builds.
type colStore struct {
	m     int // constraint rows
	nOrig int // structural columns
	n     int // structural + slack/surplus columns

	ptr []int // n+1 column offsets into idx/val
	idx []int // row indices
	val []float64

	slackCol []int   // per row: its slack/surplus column, -1 for EQ rows
	sense    []Sense // per row: original constraint sense
}

// buildColStore compresses the problem's dense constraint rows into column
// form and appends the slack/surplus singletons.
func buildColStore(p *Problem) *colStore {
	nOrig := p.NumVars()
	m := len(p.Constraints)
	nSlack := 0
	for _, c := range p.Constraints {
		if c.Sense != EQ {
			nSlack++
		}
	}
	n := nOrig + nSlack
	cs := &colStore{
		m:        m,
		nOrig:    nOrig,
		n:        n,
		ptr:      make([]int, n+1),
		slackCol: make([]int, m),
		sense:    make([]Sense, m),
	}

	// Two-pass CSC build: count nonzeros per column, prefix-sum, fill.
	counts := make([]int, n)
	nnz := 0
	for _, c := range p.Constraints {
		for j, v := range c.Coef {
			if v != 0 {
				counts[j]++
				nnz++
			}
		}
	}
	slack := nOrig
	for i, c := range p.Constraints {
		cs.sense[i] = c.Sense
		if c.Sense == EQ {
			cs.slackCol[i] = -1
			continue
		}
		cs.slackCol[i] = slack
		counts[slack]++
		nnz++
		slack++
	}
	cs.idx = make([]int, nnz)
	cs.val = make([]float64, nnz)
	for j := 0; j < n; j++ {
		cs.ptr[j+1] = cs.ptr[j] + counts[j]
		counts[j] = cs.ptr[j] // reuse as fill cursor
	}
	for i, c := range p.Constraints {
		for j, v := range c.Coef {
			if v != 0 {
				k := counts[j]
				cs.idx[k] = i
				cs.val[k] = v
				counts[j] = k + 1
			}
		}
	}
	slack = nOrig
	for i, c := range p.Constraints {
		if c.Sense == EQ {
			continue
		}
		k := counts[slack]
		cs.idx[k] = i
		if c.Sense == LE {
			cs.val[k] = 1
		} else {
			cs.val[k] = -1
		}
		counts[slack] = k + 1
		slack++
	}
	return cs
}

// nnz returns the number of stored nonzeros in column j.
func (cs *colStore) nnz(j int) int { return cs.ptr[j+1] - cs.ptr[j] }

// dot returns a_j · y for stored column j.
func (cs *colStore) dot(j int, y []float64) float64 {
	s := 0.0
	for k := cs.ptr[j]; k < cs.ptr[j+1]; k++ {
		s += cs.val[k] * y[cs.idx[k]]
	}
	return s
}

// scatterAdd adds scale * a_j into the dense vector out.
func (cs *colStore) scatterAdd(j int, scale float64, out []float64) {
	for k := cs.ptr[j]; k < cs.ptr[j+1]; k++ {
		out[cs.idx[k]] += scale * cs.val[k]
	}
}
