package lp

import (
	"math"
	"testing"
)

// Degeneracy and bounded-variable edge cases. The simplex core relies on
// Bland's rule to escape cycling and on the implicit-bound machinery for
// bound flips in both directions; each test here pins one of those paths
// with a hand-checkable instance.

// TestBealeCyclingInstance solves Beale's classic cycling example, on which
// pure Dantzig pricing with a naive tie-break cycles forever. The solver
// must terminate (Bland fallback) at the known optimum 1/20.
func TestBealeCyclingInstance(t *testing.T) {
	p := &Problem{}
	x1 := p.AddVar(0.75, 0, Inf, "x1")
	x2 := p.AddVar(-150, 0, Inf, "x2")
	x3 := p.AddVar(0.02, 0, Inf, "x3")
	x4 := p.AddVar(-6, 0, Inf, "x4")
	p.AddConstraint([]int{x1, x2, x3, x4}, []float64{0.25, -60, -0.04, 9}, LE, 0, "c1")
	p.AddConstraint([]int{x1, x2, x3, x4}, []float64{0.5, -90, -0.02, 3}, LE, 0, "c2")
	p.AddConstraint([]int{x3}, []float64{1}, LE, 1, "c3")

	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-0.05) > 1e-9 {
		t.Errorf("objective = %g, want 0.05", sol.Objective)
	}
	if math.Abs(sol.X[x1]-0.04) > 1e-9 || math.Abs(sol.X[x3]-1) > 1e-9 {
		t.Errorf("X = %v, want x1=0.04, x3=1", sol.X)
	}
	if v := p.FirstViolation(sol.X, 1e-9); v != "" {
		t.Errorf("optimal point infeasible: %s", v)
	}
}

// TestBoundFlipToUpper drives a nonbasic variable all the way to its finite
// upper bound without any basic variable blocking — the flip branch of the
// ratio test, which never pivots.
func TestBoundFlipToUpper(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(3, 0, 3, "x")
	y := p.AddVar(2, 0, 3, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 2}, LE, 4, "cap")

	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-10) > 1e-9 {
		t.Errorf("objective = %g, want 10", sol.Objective)
	}
	if sol.X[x] != 3 || math.Abs(sol.X[y]-0.5) > 1e-9 {
		t.Errorf("X = %v, want x=3 (at upper), y=0.5", sol.X)
	}
}

// TestEntryFromUpperBound forces phase 1 to park a variable at its upper
// bound and phase 2 to re-enter it downward (the dir = -1 pricing branch):
// z must decrease from 4 to 2 once w saturates.
func TestEntryFromUpperBound(t *testing.T) {
	p := &Problem{}
	z := p.AddVar(-10, 0, 4, "z")
	w := p.AddVar(0, 0, 3, "w")
	p.AddConstraint([]int{z, w}, []float64{1, 1}, GE, 5, "cover")

	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-20)) > 1e-9 {
		t.Errorf("objective = %g, want -20", sol.Objective)
	}
	if math.Abs(sol.X[z]-2) > 1e-9 || math.Abs(sol.X[w]-3) > 1e-9 {
		t.Errorf("X = %v, want z=2, w=3", sol.X)
	}
}

// TestFixedVariableEquality exercises span-zero bounds (lo == up) combined
// with an equality row — both the variable and the row are degenerate.
func TestFixedVariableEquality(t *testing.T) {
	p := &Problem{}
	x := p.AddVar(5, 2, 2, "x")
	y := p.AddVar(1, 0, 10, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, EQ, 6, "sum")

	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if sol.X[x] != 2 || math.Abs(sol.X[y]-4) > 1e-9 {
		t.Errorf("X = %v, want x=2 (fixed), y=4", sol.X)
	}
	if math.Abs(sol.Objective-14) > 1e-9 {
		t.Errorf("objective = %g, want 14", sol.Objective)
	}
}

// TestBasicArtificialStaysClamped is the regression pin for a bug found by
// the solvercheck differential harness (generator seed 86): when phase 1
// ends with an artificial still basic at value zero and no resting-at-lower
// column can host the drive-out swap, the artificial used to keep its +Inf
// upper bound, so phase 2 could grow it — silently relaxing the underlying
// equality row and reporting an infeasible point as Optimal. The artificial
// must stay clamped at zero.
func TestBasicArtificialStaysClamped(t *testing.T) {
	p := &Problem{}
	lo := []float64{0, 3, 1, 3, 3, 1, 0}
	up := []float64{3, 7, 7, 6, 4, 7, 8}
	obj := []float64{-4, -3, -2, -4, -5, -2, -3}
	for j := range obj {
		p.AddVar(obj[j], lo[j], up[j], "")
	}
	rows := []struct {
		coef  []float64
		sense Sense
		rhs   float64
	}{
		{[]float64{0, 0, -1, 0, 0, 0, 0}, EQ, -4},
		{[]float64{3, 0, 0, 1, 1, 2, -4}, GE, 16},
		{[]float64{-3, 4, -2, -4, 1, 0, -1}, LE, -15},
		{[]float64{1, 0, 0, 0, 0, 0, 0}, EQ, 3},
		{[]float64{-1, 1, 0, 3, 0, 0, 1}, LE, 23},
		{[]float64{4, 0, 4, 3, -3, 0, -3}, LE, 30},
	}
	idx := []int{0, 1, 2, 3, 4, 5, 6}
	for _, row := range rows {
		p.AddConstraint(idx, row.coef, row.sense, row.rhs, "")
	}

	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if v := p.FirstViolation(sol.X, 1e-7); v != "" {
		t.Fatalf("optimal point infeasible: %s (X = %v)", v, sol.X)
	}
	// The two equality rows pin x2 = 4 and x0 = 3 exactly.
	if sol.X[0] != 3 || sol.X[2] != 4 {
		t.Errorf("equality rows not honored: x0 = %g (want 3), x2 = %g (want 4)", sol.X[0], sol.X[2])
	}
	if math.Abs(sol.Objective-p.Eval(sol.X)) > 1e-9 {
		t.Errorf("objective %g does not match c·x = %g", sol.Objective, p.Eval(sol.X))
	}
}
