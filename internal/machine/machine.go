// Package machine describes the computing resource on which a simulation and
// its in-situ analyses run: node counts, memory per node, ranks per node,
// torus network geometry, and storage bandwidth. The paper's evaluation
// system is Mira, a 48-rack IBM Blue Gene/Q at Argonne (16 GB RAM per node,
// 240 GB/s peak I/O to GPFS, 5D torus interconnect); Mira() reproduces that
// descriptor. The network diameter exposed here is the y-variable the paper
// uses for bilinear interpolation of collective-communication time (§4).
package machine

import (
	"fmt"
	"sort"
)

// Machine describes a parallel computer.
type Machine struct {
	Name         string
	Nodes        int     // total compute nodes
	CoresPerNode int     // cores per node
	RanksPerNode int     // MPI-like ranks per node used by jobs
	MemPerNode   int64   // bytes of RAM per node
	IOBandwidth  float64 // peak bytes/s from compute to storage
	TorusDims    int     // dimensionality of the torus interconnect
	ClockGHz     float64 // per-core clock, for rough compute scaling
}

// Mira returns a descriptor of the IBM Blue Gene/Q system used in the paper:
// 48 racks x 2 midplanes x 512 nodes, PowerPC A2 at 1.6 GHz, 16 cores per
// node (16 ranks per node in the paper's runs), 16 GB per node, 240 GB/s
// peak I/O bandwidth to GPFS, 5D torus.
func Mira() *Machine {
	return &Machine{
		Name:         "Mira (IBM Blue Gene/Q)",
		Nodes:        48 * 2 * 512,
		CoresPerNode: 16,
		RanksPerNode: 16,
		MemPerNode:   16 << 30,
		IOBandwidth:  240e9,
		TorusDims:    5,
		ClockGHz:     1.6,
	}
}

// Generic builds a descriptor for an arbitrary cluster: nodes, cores (and
// ranks) per node, per-node memory, aggregate I/O bandwidth, and torus
// dimensionality (1 models a fat-tree-ish flat network adequately for the
// diameter-based interpolation).
func Generic(name string, nodes, coresPerNode int, memPerNode int64, ioBW float64, torusDims int) *Machine {
	return &Machine{
		Name:         name,
		Nodes:        nodes,
		CoresPerNode: coresPerNode,
		RanksPerNode: coresPerNode,
		MemPerNode:   memPerNode,
		IOBandwidth:  ioBW,
		TorusDims:    torusDims,
		ClockGHz:     2.5,
	}
}

// Laptop returns a small descriptor for running the mini-apps at test scale.
func Laptop() *Machine {
	return &Machine{
		Name:         "laptop",
		Nodes:        1,
		CoresPerNode: 8,
		RanksPerNode: 8,
		MemPerNode:   16 << 30,
		IOBandwidth:  2e9,
		TorusDims:    1,
		ClockGHz:     3.0,
	}
}

// Partition is an allocation of nodes on a machine, with the torus shape the
// control system would carve out for it.
type Partition struct {
	Machine *Machine
	Nodes   int
	Ranks   int
	Shape   []int // torus dimensions, product == Nodes
}

// Partition allocates the given number of nodes and computes a near-balanced
// torus shape for it. Node counts that are not a power of two are accepted;
// the shape is built from the prime factorization.
func (m *Machine) Partition(nodes int) (*Partition, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("machine: partition of %d nodes", nodes)
	}
	if nodes > m.Nodes {
		return nil, fmt.Errorf("machine: partition of %d nodes exceeds machine size %d", nodes, m.Nodes)
	}
	return &Partition{
		Machine: m,
		Nodes:   nodes,
		Ranks:   nodes * m.RanksPerNode,
		Shape:   TorusShape(nodes, m.TorusDims),
	}, nil
}

// PartitionForRanks allocates enough nodes for the given rank count.
func (m *Machine) PartitionForRanks(ranks int) (*Partition, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("machine: partition for %d ranks", ranks)
	}
	nodes := (ranks + m.RanksPerNode - 1) / m.RanksPerNode
	p, err := m.Partition(nodes)
	if err != nil {
		return nil, err
	}
	p.Ranks = ranks
	return p, nil
}

// Diameter returns the network diameter of the partition's torus: the sum of
// floor(d/2) over all dimensions, the maximum hop count between two nodes.
func (p *Partition) Diameter() int {
	return TorusDiameter(p.Shape)
}

// MemPerRank returns the memory available to each rank, in bytes.
func (p *Partition) MemPerRank() int64 {
	perNode := p.Machine.MemPerNode
	rpn := p.Ranks / p.Nodes
	if rpn <= 0 {
		rpn = 1
	}
	return perNode / int64(rpn)
}

// TotalMemory returns the aggregate memory of the partition in bytes.
func (p *Partition) TotalMemory() int64 {
	return int64(p.Nodes) * p.Machine.MemPerNode
}

// String formats the partition for diagnostics.
func (p *Partition) String() string {
	return fmt.Sprintf("%d nodes (%d ranks) shape %v diameter %d", p.Nodes, p.Ranks, p.Shape, p.Diameter())
}

// TorusShape factorizes n into dims near-balanced torus dimensions. The
// decomposition multiplies prime factors onto the currently smallest
// dimension, which mirrors how partition shapes grow on Blue Gene systems.
func TorusShape(n, dims int) []int {
	if dims <= 0 {
		dims = 1
	}
	shape := make([]int, dims)
	for i := range shape {
		shape[i] = 1
	}
	for _, f := range primeFactors(n) {
		sort.Ints(shape)
		shape[0] *= f
	}
	sort.Sort(sort.Reverse(sort.IntSlice(shape)))
	return shape
}

// TorusDiameter returns the maximum hop distance on a torus of the given
// shape: sum over dimensions of floor(d/2).
func TorusDiameter(shape []int) int {
	d := 0
	for _, s := range shape {
		d += s / 2
	}
	return d
}

func primeFactors(n int) []int {
	var fs []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	// Largest factors first so they seed the dimensions.
	sort.Sort(sort.Reverse(sort.IntSlice(fs)))
	return fs
}
