package machine

import (
	"testing"
	"testing/quick"
)

func TestMiraDescriptor(t *testing.T) {
	m := Mira()
	if m.Nodes != 49152 {
		t.Fatalf("Mira nodes = %d, want 49152 (48 racks x 1024)", m.Nodes)
	}
	if m.MemPerNode != 16<<30 {
		t.Fatalf("Mira memory per node = %d, want 16 GiB", m.MemPerNode)
	}
	if m.IOBandwidth != 240e9 {
		t.Fatalf("Mira I/O bandwidth = %g, want 240 GB/s", m.IOBandwidth)
	}
	if m.RanksPerNode != 16 {
		t.Fatalf("Mira ranks per node = %d, want 16", m.RanksPerNode)
	}
}

func TestPartitionShapes(t *testing.T) {
	m := Mira()
	for _, nodes := range []int{128, 256, 512, 1024, 2048} {
		p, err := m.Partition(nodes)
		if err != nil {
			t.Fatal(err)
		}
		prod := 1
		for _, d := range p.Shape {
			prod *= d
		}
		if prod != nodes {
			t.Fatalf("shape %v product %d != %d nodes", p.Shape, prod, nodes)
		}
		if len(p.Shape) != 5 {
			t.Fatalf("shape %v is not 5D", p.Shape)
		}
		if p.Ranks != nodes*16 {
			t.Fatalf("ranks = %d, want %d", p.Ranks, nodes*16)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	m := Mira()
	if _, err := m.Partition(0); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
	if _, err := m.Partition(m.Nodes + 1); err == nil {
		t.Fatal("expected error for oversubscription")
	}
	if _, err := m.PartitionForRanks(0); err == nil {
		t.Fatal("expected error for 0 ranks")
	}
}

func TestPartitionForRanks(t *testing.T) {
	m := Mira()
	p, err := m.PartitionForRanks(16384)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes != 1024 {
		t.Fatalf("16384 ranks -> %d nodes, want 1024", p.Nodes)
	}
	if p.MemPerRank() != (16<<30)/16 {
		t.Fatalf("mem per rank = %d, want 1 GiB", p.MemPerRank())
	}
	if p.TotalMemory() != int64(1024)*(16<<30) {
		t.Fatalf("total memory = %d", p.TotalMemory())
	}
}

func TestDiameterGrowsWithPartition(t *testing.T) {
	m := Mira()
	prev := -1
	for _, nodes := range []int{128, 512, 2048, 8192} {
		p, err := m.Partition(nodes)
		if err != nil {
			t.Fatal(err)
		}
		d := p.Diameter()
		if d <= prev {
			t.Fatalf("diameter %d for %d nodes not larger than previous %d", d, nodes, prev)
		}
		prev = d
	}
}

func TestTorusDiameterKnown(t *testing.T) {
	// 4x4x4x4x2 (512-node midplane): 2+2+2+2+1 = 9.
	if d := TorusDiameter([]int{4, 4, 4, 4, 2}); d != 9 {
		t.Fatalf("midplane diameter = %d, want 9", d)
	}
	if d := TorusDiameter([]int{1}); d != 0 {
		t.Fatalf("single-node diameter = %d, want 0", d)
	}
}

// Property: TorusShape always multiplies out to n and is non-increasing.
func TestTorusShapeProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%4096) + 1
		shape := TorusShape(n, 5)
		prod := 1
		for i, d := range shape {
			if d < 1 {
				return false
			}
			prod *= d
			if i > 0 && shape[i] > shape[i-1] {
				return false
			}
		}
		return prod == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLaptopSane(t *testing.T) {
	m := Laptop()
	p, err := m.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Diameter() != 0 {
		t.Fatalf("single-node laptop diameter = %d", p.Diameter())
	}
	if p.String() == "" {
		t.Fatal("empty partition string")
	}
}

func TestGenericMachine(t *testing.T) {
	m := Generic("cluster", 256, 32, 64<<30, 50e9, 3)
	if m.Nodes != 256 || m.RanksPerNode != 32 || m.TorusDims != 3 {
		t.Fatalf("descriptor = %+v", m)
	}
	p, err := m.Partition(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shape) != 3 {
		t.Fatalf("shape = %v", p.Shape)
	}
	if p.MemPerRank() != (64<<30)/32 {
		t.Fatalf("mem per rank = %d", p.MemPerRank())
	}
}
