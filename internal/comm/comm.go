// Package comm is a message-passing runtime that plays the role MPI plays in
// the paper's applications. Ranks are goroutines inside one process; they
// exchange tagged messages through mailboxes and implement the collectives
// the analysis kernels need (Barrier, Reduce, Allreduce, Bcast, Gather,
// Allgather) with binomial-tree algorithms, so communication volume and
// depth behave like real MPI implementations.
//
// The package also provides NetworkModel, an analytic latency/bandwidth/hops
// cost model parameterized by torus diameter. The paper predicts collective
// time via bilinear interpolation with network diameter as the y-variable
// (§4, Figure 2); NetworkModel is the ground truth that experiment
// reproduces.
package comm

import (
	"fmt"
	"math"
	"sync"
	"time"

	"insitu/internal/obs"
)

// message is a tagged payload in flight between two ranks.
type message struct {
	from, tag int
	data      []float64
}

// mailbox is a rank's incoming message queue with blocking matched receive.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	closed  bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.pending = append(mb.pending, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a message matching (from, tag) is available and removes
// it. from == AnySource matches any sender.
func (mb *mailbox) take(from, tag int) (message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.pending {
			if (from == AnySource || m.from == from) && m.tag == tag {
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				return m, nil
			}
		}
		if mb.closed {
			return message{}, fmt.Errorf("comm: world shut down while waiting for message from=%d tag=%d", from, tag)
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// World is a fixed-size group of ranks.
type World struct {
	size  int
	boxes []*mailbox
	// Telemetry handles resolved once by Instrument; all remain nil-safe
	// no-ops when the world is uninstrumented, so Send stays branch-free.
	mMsgs  *obs.Counter
	mBytes *obs.Counter
	mColl  map[string]*obs.Counter
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("comm: world size %d", size)
	}
	w := &World{size: size, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Instrument registers the world's traffic counters with reg:
// comm_messages_total and comm_bytes_total (payload bytes, 8 per float64)
// incremented on every Send, and comm_collectives_total{op=...} incremented
// once per rank entering each collective. Call before Run — the handles are
// cached without synchronization.
func (w *World) Instrument(reg *obs.Registry) {
	w.mMsgs = reg.Counter("comm_messages_total", nil)
	w.mBytes = reg.Counter("comm_bytes_total", nil)
	w.mColl = make(map[string]*obs.Counter)
	for _, op := range []string{"barrier", "reduce", "bcast", "allreduce", "gather", "allgather"} {
		w.mColl[op] = reg.Counter("comm_collectives_total", obs.Labels{"op": op})
	}
}

// collective counts one rank's entry into the named collective.
func (w *World) collective(op string) {
	if w.mColl != nil {
		w.mColl[op].Inc()
	}
}

// Run executes fn concurrently on every rank and waits for all of them. The
// first non-nil error is returned; if any rank fails, mailboxes are closed so
// blocked ranks unwind instead of deadlocking.
func (w *World) Run(fn func(r *Rank) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	var once sync.Once
	for i := 0; i < w.size; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := fn(&Rank{id: id, w: w}); err != nil {
				errs[id] = err
				once.Do(func() {
					for _, mb := range w.boxes {
						mb.close()
					}
				})
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Reset closed mailboxes for potential reuse after an error-free run.
	return nil
}

// Rank is one participant in a World. All methods are collective or
// point-to-point operations in MPI style.
type Rank struct {
	id int
	w  *World
}

// ID returns the rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.size }

// Send delivers data to rank `to` with the given tag. The slice is copied,
// so the caller may reuse it immediately.
func (r *Rank) Send(to, tag int, data []float64) {
	if to < 0 || to >= r.w.size {
		panic(fmt.Sprintf("comm: send to rank %d of %d", to, r.w.size))
	}
	cp := append([]float64(nil), data...)
	r.w.mMsgs.Inc()
	r.w.mBytes.Add(float64(8 * len(data)))
	r.w.boxes[to].put(message{from: r.id, tag: tag, data: cp})
}

// Recv blocks until a message with the given tag arrives from rank `from`
// (or any rank if from == AnySource) and returns its payload and sender.
func (r *Rank) Recv(from, tag int) ([]float64, int, error) {
	m, err := r.w.boxes[r.id].take(from, tag)
	if err != nil {
		return nil, -1, err
	}
	return m.data, m.from, nil
}

// Reserved internal tags; user tags must be >= 0 and are offset to avoid
// collisions.
const (
	tagBarrier = -1000 - iota
	tagReduce
	tagBcast
	tagGather
	tagUser = 0
)

// Barrier blocks until every rank has entered it. Implemented as a reduce to
// rank 0 followed by a broadcast over a binomial tree: 2*ceil(log2 P) rounds.
func (r *Rank) Barrier() error {
	r.w.collective("barrier")
	if _, err := r.reduceTree(0, tagBarrier, nil, Sum); err != nil {
		return err
	}
	_, err := r.bcastTree(0, tagBarrier, nil)
	return err
}

// Op is a reduction operator over float64 vectors.
type Op func(dst, src []float64)

// Sum accumulates src into dst elementwise.
func Sum(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Max keeps the elementwise maximum in dst.
func Max(dst, src []float64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// Min keeps the elementwise minimum in dst.
func Min(dst, src []float64) {
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

// reduceTree reduces vals onto root over a binomial tree rooted at root.
// Returns the reduced vector at root (nil elsewhere).
func (r *Rank) reduceTree(root, tag int, vals []float64, op Op) ([]float64, error) {
	p := r.w.size
	// Re-index ranks so the root is virtual rank 0.
	vr := (r.id - root + p) % p
	acc := append([]float64(nil), vals...)
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			dst := ((vr &^ mask) + root) % p
			r.Send(dst, tag, acc)
			return nil, nil
		}
		partner := vr | mask
		if partner < p {
			src := (partner + root) % p
			data, _, err := r.Recv(src, tag)
			if err != nil {
				return nil, err
			}
			if len(acc) == 0 {
				acc = data
			} else {
				op(acc, data)
			}
		}
	}
	return acc, nil
}

// bcastTree broadcasts vals from root over a binomial tree and returns the
// received vector on every rank.
func (r *Rank) bcastTree(root, tag int, vals []float64) ([]float64, error) {
	p := r.w.size
	vr := (r.id - root + p) % p
	data := append([]float64(nil), vals...)
	// Find the highest mask at which this rank receives.
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := ((vr &^ mask) + root) % p
			got, _, err := r.Recv(src, tag)
			if err != nil {
				return nil, err
			}
			data = got
			break
		}
		mask <<= 1
	}
	// Forward to children below the receiving mask.
	mask >>= 1
	for ; mask > 0; mask >>= 1 {
		child := vr | mask
		if child < p && child != vr {
			dst := (child + root) % p
			r.Send(dst, tag, data)
		}
	}
	return data, nil
}

// Reduce combines vals from all ranks onto root with op. The reduced vector
// is returned at root; other ranks receive nil.
func (r *Rank) Reduce(root int, vals []float64, op Op) ([]float64, error) {
	r.w.collective("reduce")
	return r.reduceTree(root, tagReduce, vals, op)
}

// Bcast distributes root's vals to every rank and returns them.
func (r *Rank) Bcast(root int, vals []float64) ([]float64, error) {
	r.w.collective("bcast")
	return r.bcastTree(root, tagBcast, vals)
}

// Allreduce combines vals across all ranks with op and returns the result on
// every rank (reduce + broadcast).
func (r *Rank) Allreduce(vals []float64, op Op) ([]float64, error) {
	r.w.collective("allreduce")
	red, err := r.reduceTree(0, tagReduce, vals, op)
	if err != nil {
		return nil, err
	}
	return r.bcastTree(0, tagBcast, red)
}

// Gather collects each rank's vals at root. Root receives a slice indexed by
// rank; other ranks receive nil. Contributions may have different lengths.
func (r *Rank) Gather(root int, vals []float64) ([][]float64, error) {
	r.w.collective("gather")
	return r.gather(root, vals)
}

func (r *Rank) gather(root int, vals []float64) ([][]float64, error) {
	if r.id != root {
		r.Send(root, tagGather, vals)
		return nil, nil
	}
	out := make([][]float64, r.w.size)
	out[root] = append([]float64(nil), vals...)
	for i := 0; i < r.w.size-1; i++ {
		data, from, err := r.Recv(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		out[from] = data
	}
	return out, nil
}

// Allgather collects every rank's vals on every rank.
func (r *Rank) Allgather(vals []float64) ([][]float64, error) {
	r.w.collective("allgather")
	parts, err := r.gather(0, vals)
	if err != nil {
		return nil, err
	}
	if r.id == 0 {
		// Flatten with length prefixes for the broadcast.
		flat := []float64{float64(len(parts))}
		for _, p := range parts {
			flat = append(flat, float64(len(p)))
			flat = append(flat, p...)
		}
		if _, err := r.bcastTree(0, tagBcast, flat); err != nil {
			return nil, err
		}
		return parts, nil
	}
	flat, err := r.bcastTree(0, tagBcast, nil)
	if err != nil {
		return nil, err
	}
	n := int(flat[0])
	out := make([][]float64, n)
	pos := 1
	for i := 0; i < n; i++ {
		l := int(flat[pos])
		pos++
		out[i] = append([]float64(nil), flat[pos:pos+l]...)
		pos += l
	}
	return out, nil
}

// NetworkModel is an analytic cost model for the interconnect: per-message
// latency, per-hop latency, and link bandwidth. Collective times follow the
// standard log-tree alpha-beta model plus a diameter term, which is the
// dependence the paper exploits when it interpolates communication time over
// network diameter.
type NetworkModel struct {
	Alpha       time.Duration // per-message software latency
	PerHop      time.Duration // per-hop wire latency
	BytesPerSec float64       // link bandwidth
}

// BGQNetwork returns a Blue Gene/Q-like 5D torus model (about 2 GB/s links,
// ~40 ns per hop, microsecond-scale message latency).
func BGQNetwork() *NetworkModel {
	return &NetworkModel{
		Alpha:       1200 * time.Nanosecond,
		PerHop:      40 * time.Nanosecond,
		BytesPerSec: 1.8e9,
	}
}

// PointToPoint returns the modeled time to move `bytes` across `hops` links.
func (nm *NetworkModel) PointToPoint(bytes int64, hops int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	t := float64(nm.Alpha) + float64(hops)*float64(nm.PerHop) + float64(bytes)/nm.BytesPerSec*float64(time.Second)
	return time.Duration(t)
}

// AllreduceTime returns the modeled time of an allreduce of `bytes` per rank
// across `ranks` ranks on a torus with the given diameter: 2·log2(P) message
// rounds, each crossing up to the diameter, moving 2·bytes total per link.
func (nm *NetworkModel) AllreduceTime(bytes int64, ranks, diameter int) time.Duration {
	if ranks <= 1 {
		return 0
	}
	rounds := 2 * math.Ceil(math.Log2(float64(ranks)))
	t := rounds*float64(nm.Alpha) +
		float64(diameter)*float64(nm.PerHop)*2 +
		2*float64(bytes)/nm.BytesPerSec*float64(time.Second)
	return time.Duration(t)
}

// GatherTime returns the modeled time of gathering `bytes` per rank to a
// root: the root link is the bottleneck.
func (nm *NetworkModel) GatherTime(bytes int64, ranks, diameter int) time.Duration {
	if ranks <= 1 {
		return 0
	}
	t := math.Ceil(math.Log2(float64(ranks)))*float64(nm.Alpha) +
		float64(diameter)*float64(nm.PerHop) +
		float64(bytes)*float64(ranks-1)/nm.BytesPerSec*float64(time.Second)
	return time.Duration(t)
}
