package comm

import (
	"fmt"
	"math"
	"testing"
)

func TestScatter(t *testing.T) {
	run(t, 5, func(r *Rank) error {
		var parts [][]float64
		if r.ID() == 2 {
			parts = make([][]float64, 5)
			for i := range parts {
				parts[i] = []float64{float64(i * 7)}
			}
		}
		got, err := r.Scatter(2, parts)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != float64(r.ID()*7) {
			return fmt.Errorf("rank %d got %v", r.ID(), got)
		}
		return nil
	})
}

func TestScatterValidation(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			if _, err := r.Scatter(0, [][]float64{{1}}); err == nil {
				return fmt.Errorf("expected parts-length error")
			}
			// Unblock the other ranks properly afterwards.
			parts := [][]float64{{0}, {1}, {2}}
			_, err := r.Scatter(0, parts)
			return err
		}
		_, err := r.Scatter(0, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	run(t, 4, func(r *Rank) error {
		parts := make([][]float64, 4)
		for j := range parts {
			parts[j] = []float64{float64(r.ID()*10 + j)}
		}
		got, err := r.Alltoall(parts)
		if err != nil {
			return err
		}
		for from, part := range got {
			want := float64(from*10 + r.ID())
			if len(part) != 1 || part[0] != want {
				return fmt.Errorf("rank %d from %d: %v, want %g", r.ID(), from, part, want)
			}
		}
		return nil
	})
}

func TestAlltoallValidation(t *testing.T) {
	run(t, 2, func(r *Rank) error {
		if r.ID() == 0 {
			if _, err := r.Alltoall([][]float64{{1}}); err == nil {
				return fmt.Errorf("expected parts-length error")
			}
		}
		// Complete a proper alltoall so both ranks exit cleanly.
		_, err := r.Alltoall([][]float64{{0}, {1}})
		return err
	})
}

func TestAllreduceRDMatchesTree(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8, 12} {
		size := size
		t.Run(fmt.Sprintf("p%d", size), func(t *testing.T) {
			run(t, size, func(r *Rank) error {
				in := []float64{float64(r.ID() + 1), float64(r.ID() * r.ID())}
				rd, err := r.AllreduceRD(in, Sum)
				if err != nil {
					return err
				}
				tree, err := r.Allreduce(in, Sum)
				if err != nil {
					return err
				}
				for i := range rd {
					if math.Abs(rd[i]-tree[i]) > 1e-9 {
						return fmt.Errorf("rank %d: rd=%v tree=%v", r.ID(), rd, tree)
					}
				}
				return nil
			})
		})
	}
}

func TestAllreduceRDMax(t *testing.T) {
	run(t, 6, func(r *Rank) error {
		out, err := r.AllreduceRD([]float64{float64(r.ID())}, Max)
		if err != nil {
			return err
		}
		if out[0] != 5 {
			return fmt.Errorf("max = %v", out)
		}
		return nil
	})
}

func TestAllreduceRDRepeated(t *testing.T) {
	run(t, 5, func(r *Rank) error {
		for iter := 0; iter < 30; iter++ {
			out, err := r.AllreduceRD([]float64{float64(iter)}, Sum)
			if err != nil {
				return err
			}
			if out[0] != float64(5*iter) {
				return fmt.Errorf("iter %d: %v", iter, out)
			}
		}
		return nil
	})
}
