package comm

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"insitu/internal/obs"
)

func run(t *testing.T, size int, fn func(r *Rank) error) {
	t.Helper()
	w, err := NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	run(t, 2, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 7, []float64{1, 2, 3})
			return nil
		}
		data, from, err := r.Recv(0, 7)
		if err != nil {
			return err
		}
		if from != 0 || len(data) != 3 || data[2] != 3 {
			return fmt.Errorf("got %v from %d", data, from)
		}
		return nil
	})
}

func TestSendCopiesPayload(t *testing.T) {
	run(t, 2, func(r *Rank) error {
		if r.ID() == 0 {
			buf := []float64{1}
			r.Send(1, 0, buf)
			buf[0] = 99 // must not affect the receiver
			return nil
		}
		data, _, err := r.Recv(0, 0)
		if err != nil {
			return err
		}
		if data[0] != 1 {
			return fmt.Errorf("payload mutated after send: %v", data)
		}
		return nil
	})
}

func TestRecvAnySource(t *testing.T) {
	run(t, 4, func(r *Rank) error {
		if r.ID() != 0 {
			r.Send(0, 1, []float64{float64(r.ID())})
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			data, from, err := r.Recv(AnySource, 1)
			if err != nil {
				return err
			}
			if int(data[0]) != from {
				return fmt.Errorf("payload %v does not match sender %d", data, from)
			}
			seen[from] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("saw %d senders", len(seen))
		}
		return nil
	})
}

func TestTagMatching(t *testing.T) {
	run(t, 2, func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 5, []float64{5})
			r.Send(1, 4, []float64{4})
			return nil
		}
		// Receive out of send order by tag.
		d4, _, err := r.Recv(0, 4)
		if err != nil {
			return err
		}
		d5, _, err := r.Recv(0, 5)
		if err != nil {
			return err
		}
		if d4[0] != 4 || d5[0] != 5 {
			return fmt.Errorf("tag matching broken: %v %v", d4, d5)
		}
		return nil
	})
}

func TestAllreduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 16} {
		size := size
		t.Run(fmt.Sprintf("p%d", size), func(t *testing.T) {
			run(t, size, func(r *Rank) error {
				in := []float64{float64(r.ID() + 1), 1}
				out, err := r.Allreduce(in, Sum)
				if err != nil {
					return err
				}
				wantSum := float64(size*(size+1)) / 2
				if out[0] != wantSum || out[1] != float64(size) {
					return fmt.Errorf("rank %d: allreduce = %v, want [%g %d]", r.ID(), out, wantSum, size)
				}
				return nil
			})
		})
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	run(t, 7, func(r *Rank) error {
		v := float64(r.ID())
		mx, err := r.Allreduce([]float64{v}, Max)
		if err != nil {
			return err
		}
		mn, err := r.Allreduce([]float64{v}, Min)
		if err != nil {
			return err
		}
		if mx[0] != 6 || mn[0] != 0 {
			return fmt.Errorf("max=%v min=%v", mx, mn)
		}
		return nil
	})
}

func TestReduceNonZeroRoot(t *testing.T) {
	run(t, 6, func(r *Rank) error {
		out, err := r.Reduce(3, []float64{1}, Sum)
		if err != nil {
			return err
		}
		if r.ID() == 3 {
			if out == nil || out[0] != 6 {
				return fmt.Errorf("root got %v", out)
			}
		} else if out != nil {
			return fmt.Errorf("non-root rank %d got %v", r.ID(), out)
		}
		return nil
	})
}

func TestBcastNonZeroRoot(t *testing.T) {
	run(t, 5, func(r *Rank) error {
		var in []float64
		if r.ID() == 2 {
			in = []float64{42, 43}
		}
		out, err := r.Bcast(2, in)
		if err != nil {
			return err
		}
		if len(out) != 2 || out[0] != 42 || out[1] != 43 {
			return fmt.Errorf("rank %d bcast got %v", r.ID(), out)
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	run(t, 4, func(r *Rank) error {
		// Variable-length contributions.
		in := make([]float64, r.ID()+1)
		for i := range in {
			in[i] = float64(r.ID())
		}
		out, err := r.Gather(0, in)
		if err != nil {
			return err
		}
		if r.ID() != 0 {
			if out != nil {
				return fmt.Errorf("non-root got %v", out)
			}
			return nil
		}
		for i, part := range out {
			if len(part) != i+1 {
				return fmt.Errorf("part %d has length %d", i, len(part))
			}
			for _, v := range part {
				if v != float64(i) {
					return fmt.Errorf("part %d = %v", i, part)
				}
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	run(t, 5, func(r *Rank) error {
		out, err := r.Allgather([]float64{float64(r.ID() * 10)})
		if err != nil {
			return err
		}
		if len(out) != 5 {
			return fmt.Errorf("got %d parts", len(out))
		}
		for i, part := range out {
			if len(part) != 1 || part[0] != float64(i*10) {
				return fmt.Errorf("part %d = %v", i, part)
			}
		}
		return nil
	})
}

func TestBarrierOrdering(t *testing.T) {
	var before, after int64
	run(t, 8, func(r *Rank) error {
		atomic.AddInt64(&before, 1)
		if err := r.Barrier(); err != nil {
			return err
		}
		if atomic.LoadInt64(&before) != 8 {
			return fmt.Errorf("rank %d passed barrier before all entered", r.ID())
		}
		atomic.AddInt64(&after, 1)
		return nil
	})
	if after != 8 {
		t.Fatalf("after = %d", after)
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Many iterations across ranks with different speeds must not cross-talk.
	run(t, 6, func(r *Rank) error {
		for iter := 0; iter < 50; iter++ {
			out, err := r.Allreduce([]float64{float64(iter)}, Sum)
			if err != nil {
				return err
			}
			if out[0] != float64(6*iter) {
				return fmt.Errorf("iter %d: %v", iter, out)
			}
			if err := r.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestRunPropagatesError(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			return fmt.Errorf("boom")
		}
		// Other ranks block on a message that never comes; the error path
		// must close mailboxes so they unwind.
		_, _, err := r.Recv(1, 99)
		return err
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestWorldSizeValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("expected error for size 0")
	}
}

func TestNetworkModelMonotone(t *testing.T) {
	nm := BGQNetwork()
	if nm.AllreduceTime(8, 1, 0) != 0 {
		t.Fatal("single-rank allreduce must be free")
	}
	t16 := nm.AllreduceTime(1024, 16, 4)
	t1k := nm.AllreduceTime(1024, 1024, 12)
	if t1k <= t16 {
		t.Fatalf("allreduce time must grow with scale: %v vs %v", t16, t1k)
	}
	big := nm.AllreduceTime(1<<20, 1024, 12)
	if big <= t1k {
		t.Fatalf("allreduce time must grow with bytes: %v vs %v", t1k, big)
	}
	if nm.PointToPoint(0, 0) != nm.Alpha {
		t.Fatal("zero-byte zero-hop message should cost alpha")
	}
	if nm.PointToPoint(-5, 0) != nm.Alpha {
		t.Fatal("negative bytes must clamp to zero")
	}
	g := nm.GatherTime(4096, 64, 6)
	if g <= 0 {
		t.Fatalf("gather time = %v", g)
	}
	if nm.GatherTime(4096, 1, 0) != 0 {
		t.Fatal("single-rank gather must be free")
	}
}

func TestNetworkModelDiameterDependence(t *testing.T) {
	nm := BGQNetwork()
	small := nm.AllreduceTime(8, 512, 9)
	large := nm.AllreduceTime(8, 512, 20)
	if large <= small {
		t.Fatalf("allreduce time must grow with diameter: %v vs %v", small, large)
	}
	// The diameter contribution for tiny payloads should dominate bandwidth.
	if large-small != time.Duration(2*11*int64(nm.PerHop)) {
		t.Fatalf("diameter delta = %v", large-small)
	}
}

func TestAllreduceValueStability(t *testing.T) {
	// Summation order varies with tree shape; for same inputs the result
	// must still be exact for integers well within float64 precision.
	run(t, 9, func(r *Rank) error {
		v := math.Ldexp(1, r.ID()) // 1,2,4,...,256
		out, err := r.Allreduce([]float64{v}, Sum)
		if err != nil {
			return err
		}
		if out[0] != 511 {
			return fmt.Errorf("sum = %v", out[0])
		}
		return nil
	})
}

func TestInstrumentedWorldCounters(t *testing.T) {
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	w.Instrument(reg)
	err = w.Run(func(r *Rank) error {
		out, err := r.Allreduce([]float64{float64(r.ID())}, Sum)
		if err != nil {
			return err
		}
		if out[0] != 6 {
			return fmt.Errorf("allreduce got %v", out[0])
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	find := func(name, op string) float64 {
		for _, m := range reg.Snapshot() {
			if m.Name == name && (op == "" || m.Labels["op"] == op) {
				return m.Value
			}
		}
		t.Fatalf("metric %s{op=%q} not found", name, op)
		return 0
	}
	if v := find("comm_collectives_total", "allreduce"); v != 4 {
		t.Errorf("allreduce count = %v, want 4 (one per rank)", v)
	}
	if v := find("comm_collectives_total", "barrier"); v != 4 {
		t.Errorf("barrier count = %v, want 4", v)
	}
	msgs := find("comm_messages_total", "")
	bytes := find("comm_bytes_total", "")
	if msgs <= 0 {
		t.Errorf("comm_messages_total = %v, want > 0", msgs)
	}
	// Allreduce payloads are one float64 (8 bytes); barrier messages are
	// empty, so bytes counts only the allreduce traffic.
	if bytes != 8*3*2 { // 3 reduce sends + 3 bcast sends of 1 float64 each
		t.Errorf("comm_bytes_total = %v, want 48", bytes)
	}
}

func TestUninstrumentedWorldIsNoop(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	// No Instrument call: Send and collectives must not panic.
	err = w.Run(func(r *Rank) error {
		if _, err := r.Allreduce([]float64{1}, Sum); err != nil {
			return err
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
