package comm

import "fmt"

// Additional collectives used by the mini-apps and available to analysis
// kernels. The binomial-tree Reduce/Bcast in comm.go are latency-optimal for
// small payloads; AllreduceRD is the bandwidth-optimal recursive-doubling
// variant real MPI implementations switch to for larger vectors.

const (
	tagScatter = -2000 - iota
	tagAlltoall
	tagRD
)

// Scatter distributes parts[i] from root to rank i and returns each rank's
// part. Only root may pass a non-nil parts slice, with exactly Size entries.
func (r *Rank) Scatter(root int, parts [][]float64) ([]float64, error) {
	if r.id == root {
		if len(parts) != r.w.size {
			return nil, fmt.Errorf("comm: scatter needs %d parts, got %d", r.w.size, len(parts))
		}
		for dst := 0; dst < r.w.size; dst++ {
			if dst == root {
				continue
			}
			r.Send(dst, tagScatter, parts[dst])
		}
		return append([]float64(nil), parts[root]...), nil
	}
	data, _, err := r.Recv(root, tagScatter)
	return data, err
}

// Alltoall sends parts[j] to rank j and returns the vector of received
// parts indexed by sender. parts must have Size entries.
func (r *Rank) Alltoall(parts [][]float64) ([][]float64, error) {
	if len(parts) != r.w.size {
		return nil, fmt.Errorf("comm: alltoall needs %d parts, got %d", r.w.size, len(parts))
	}
	for dst := 0; dst < r.w.size; dst++ {
		if dst == r.id {
			continue
		}
		r.Send(dst, tagAlltoall, parts[dst])
	}
	out := make([][]float64, r.w.size)
	out[r.id] = append([]float64(nil), parts[r.id]...)
	for i := 0; i < r.w.size-1; i++ {
		data, from, err := r.Recv(AnySource, tagAlltoall)
		if err != nil {
			return nil, err
		}
		out[from] = data
	}
	return out, nil
}

// AllreduceRD performs an allreduce with the recursive-doubling algorithm:
// log2(P) exchange rounds for power-of-two P, with a fold phase that first
// collapses the non-power-of-two remainder onto the lower ranks and
// re-expands at the end. For commutative ops it produces the same result as
// Allreduce up to floating-point association.
func (r *Rank) AllreduceRD(vals []float64, op Op) ([]float64, error) {
	p := r.w.size
	acc := append([]float64(nil), vals...)
	if p == 1 {
		return acc, nil
	}
	// Largest power of two <= p.
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	rem := p - pow

	// Fold: ranks [pow, p) send to [0, rem) and wait for the result.
	if r.id >= pow {
		r.Send(r.id-pow, tagRD, acc)
		data, _, err := r.Recv(r.id-pow, tagRD)
		return data, err
	}
	if r.id < rem {
		data, _, err := r.Recv(r.id+pow, tagRD)
		if err != nil {
			return nil, err
		}
		op(acc, data)
	}

	// Recursive doubling among [0, pow).
	for mask := 1; mask < pow; mask <<= 1 {
		partner := r.id ^ mask
		r.Send(partner, tagRD, acc)
		data, _, err := r.Recv(partner, tagRD)
		if err != nil {
			return nil, err
		}
		op(acc, data)
	}

	// Unfold: return results to the folded ranks.
	if r.id < rem {
		r.Send(r.id+pow, tagRD, acc)
	}
	return acc, nil
}
