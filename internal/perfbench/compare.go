package perfbench

import (
	"fmt"
	"io"
	"sort"
)

// Delta compares one metric between a baseline and a current run.
type Delta struct {
	Workload string  `json:"workload"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Ratio is current/baseline; 1 when both are zero, 0 when only the
	// baseline is zero (the ratio is undefined, and +Inf does not survive
	// JSON encoding).
	Ratio float64 `json:"ratio"`
	// Allowed is the gate: baseline*(1+threshold*slack). Zero for
	// informational metrics.
	Allowed   float64 `json:"allowed,omitempty"`
	Regressed bool    `json:"regressed"`
	// Missing marks a metric present on only one side: "current" means the
	// workload or metric vanished (a coverage regression), "baseline" means
	// it is new (recorded, not gated).
	Missing string `json:"missing,omitempty"`
}

// CompareResult is the full diff of one suite against its baseline.
type CompareResult struct {
	Suite  string  `json:"suite"`
	Slack  float64 `json:"slack"`
	Deltas []Delta `json:"deltas"`
}

// Regressions returns the deltas that breach their gate.
func (c CompareResult) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs current against baseline. slack scales every metric's
// relative threshold (the CI smoke job passes 2 to trade sensitivity for
// flake-resistance); slack <= 0 defaults to 1. A workload or gated metric
// present in the baseline but absent from the current run counts as a
// regression — losing coverage must not pass silently.
func Compare(baseline, current Suite, slack float64) CompareResult {
	if slack <= 0 {
		slack = 1
	}
	res := CompareResult{Suite: baseline.Suite, Slack: slack}
	for _, bw := range baseline.Workloads {
		cw := current.Workload(bw.Name)
		for _, bm := range bw.Metrics {
			d := Delta{Workload: bw.Name, Metric: bm.Name, Baseline: bm.Value}
			var cm *Metric
			if cw != nil {
				cm = cw.Metric(bm.Name)
			}
			if cm == nil {
				d.Missing = "current"
				d.Regressed = bm.Threshold > 0
				res.Deltas = append(res.Deltas, d)
				continue
			}
			d.Current = cm.Value
			switch {
			case bm.Value != 0:
				d.Ratio = cm.Value / bm.Value
			case cm.Value == 0:
				d.Ratio = 1
			default:
				d.Ratio = 0
			}
			if bm.Threshold > 0 {
				d.Allowed = bm.Value * (1 + bm.Threshold*slack)
				d.Regressed = cm.Value > d.Allowed
			}
			res.Deltas = append(res.Deltas, d)
		}
		if cw != nil {
			// New metrics on the current side: record, don't gate.
			for _, cm := range cw.Metrics {
				if bw.Metric(cm.Name) == nil {
					res.Deltas = append(res.Deltas, Delta{
						Workload: bw.Name, Metric: cm.Name, Current: cm.Value, Missing: "baseline",
					})
				}
			}
		}
	}
	// Workloads only in the current run: new coverage, record it.
	for _, cw := range current.Workloads {
		if baseline.Workload(cw.Name) == nil {
			for _, cm := range cw.Metrics {
				res.Deltas = append(res.Deltas, Delta{
					Workload: cw.Name, Metric: cm.Name, Current: cm.Value, Missing: "baseline",
				})
			}
		}
	}
	sort.Slice(res.Deltas, func(i, j int) bool {
		if res.Deltas[i].Workload != res.Deltas[j].Workload {
			return res.Deltas[i].Workload < res.Deltas[j].Workload
		}
		return res.Deltas[i].Metric < res.Deltas[j].Metric
	})
	return res
}

// WriteTable renders the comparison as a human-readable table: regressions
// first, then gated passes, then informational rows.
func (c CompareResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "suite %s (slack x%g)\n", c.Suite, c.Slack); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-4s %-32s %-22s %14s %14s %14s %8s\n",
		"", "workload", "metric", "baseline", "current", "allowed", "ratio"); err != nil {
		return err
	}
	order := func(d Delta) int {
		switch {
		case d.Regressed:
			return 0
		case d.Allowed > 0:
			return 1
		default:
			return 2
		}
	}
	rows := append([]Delta(nil), c.Deltas...)
	sort.SliceStable(rows, func(i, j int) bool { return order(rows[i]) < order(rows[j]) })
	for _, d := range rows {
		mark := "ok"
		switch {
		case d.Regressed:
			mark = "FAIL"
		case d.Missing == "baseline":
			mark = "new"
		case d.Allowed == 0:
			mark = "info"
		}
		cur := fmt.Sprintf("%14.4g", d.Current)
		if d.Missing == "current" {
			cur = fmt.Sprintf("%14s", "(missing)")
		}
		if _, err := fmt.Fprintf(w, "%-4s %-32s %-22s %14.4g %s %14.4g %8.3f\n",
			mark, d.Workload, d.Metric, d.Baseline, cur, d.Allowed, d.Ratio); err != nil {
			return err
		}
	}
	n := len(c.Regressions())
	if n > 0 {
		_, err := fmt.Fprintf(w, "%d regression(s) past threshold\n", n)
		return err
	}
	_, err := fmt.Fprintln(w, "no regressions")
	return err
}
