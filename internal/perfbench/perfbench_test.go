package perfbench

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed amount per reading.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	tick time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.tick)
	return c.t
}

func TestTrimAndMedian(t *testing.T) {
	cases := []struct {
		walls  []float64
		n      int
		kept   int
		median float64
	}{
		{[]float64{5, 1, 9, 3, 7}, 1, 3, 5},   // drops 1 and 9
		{[]float64{5, 1, 9, 3, 7}, 0, 5, 5},   // no trim
		{[]float64{2, 4}, 1, 2, 3},            // too few to trim: kept whole
		{[]float64{10}, 3, 1, 10},             // single sample survives any trim
		{[]float64{1, 2, 3, 4}, 1, 2, 2.5},    // even count median
		{[]float64{9, 8, 7, 6, 5, 4}, 2, 2, 6.5}, // heavy trim
	}
	for i, tc := range cases {
		kept := trim(tc.walls, tc.n)
		if len(kept) != tc.kept {
			t.Fatalf("case %d: kept %d, want %d (%v)", i, len(kept), tc.kept, kept)
		}
		if m := median(kept); m != tc.median {
			t.Fatalf("case %d: median %g, want %g (%v)", i, m, tc.median, kept)
		}
	}
	if median(nil) != 0 {
		t.Fatal("median(nil) != 0")
	}
}

func TestMeasureAggregates(t *testing.T) {
	r := &Runner{Warmup: 2, Reps: 5, Trim: 1}
	r.SetClock((&fakeClock{t: time.Unix(0, 0), tick: time.Millisecond}).now)
	runs := 0
	res, err := r.Measure(Workload{Name: "w", Run: func() (Sample, error) {
		runs++
		return Sample{Nodes: 11, Pivots: 70, Model: map[string]float64{"objective": 42}}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 7 { // 2 warmup + 5 measured
		t.Fatalf("runs = %d", runs)
	}
	if res.Reps != 3 { // 5 - 2 trimmed
		t.Fatalf("reps = %d", res.Reps)
	}
	// Every iteration takes exactly one tick (Run itself does not read the
	// clock), so min == median == 1ms.
	if m := res.Metric("wall_ns_min"); m == nil || m.Value != 1e6 {
		t.Fatalf("wall_ns_min = %+v", m)
	}
	if m := res.Metric("wall_ns_median"); m == nil || m.Value != 1e6 {
		t.Fatalf("wall_ns_median = %+v", m)
	}
	if m := res.Metric("solver_nodes_per_op"); m == nil || m.Value != 11 || m.Threshold != exactThreshold {
		t.Fatalf("solver_nodes_per_op = %+v", m)
	}
	if m := res.Metric("solver_pivots_per_op"); m == nil || m.Value != 70 {
		t.Fatalf("solver_pivots_per_op = %+v", m)
	}
	if m := res.Metric("objective"); m == nil || m.Value != 42 || m.Unit != "model" {
		t.Fatalf("objective = %+v", m)
	}
	if m := res.Metric("alloc_bytes_per_op"); m == nil {
		t.Fatal("no alloc metric")
	}
	if res.Metric("nope") != nil {
		t.Fatal("Metric invented a result")
	}
}

func TestMeasurePropagatesErrors(t *testing.T) {
	r := NewRunner()
	boom := fmt.Errorf("boom")
	if _, err := r.Measure(Workload{Name: "w", Run: func() (Sample, error) { return Sample{}, boom }}); err == nil {
		t.Fatal("warmup error swallowed")
	}
	n := 0
	r2 := &Runner{Warmup: 0, Reps: 3, now: time.Now}
	if _, err := r2.Measure(Workload{Name: "w", Run: func() (Sample, error) {
		n++
		if n == 2 {
			return Sample{}, boom
		}
		return Sample{}, nil
	}}); err == nil {
		t.Fatal("rep error swallowed")
	}
}

func TestSuiteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := Suite{Suite: "solver", Workloads: []WorkloadResult{
		{Name: "b", Reps: 3, Metrics: []Metric{{Name: "wall_ns_min", Value: 1000, Unit: "ns/op", Threshold: 1.5}}},
		{Name: "a", Reps: 3, Metrics: []Metric{{Name: "wall_ns_min", Value: 2000, Unit: "ns/op", Threshold: 1.5}}},
	}}
	path := filepath.Join(dir, "BENCH_solver.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Suite != "solver" {
		t.Fatalf("header = %+v", got)
	}
	// Sorted on write.
	if got.Workloads[0].Name != "a" || got.Workloads[1].Name != "b" {
		t.Fatalf("workloads unsorted: %+v", got.Workloads)
	}
	if got.Workload("a") == nil || got.Workload("zzz") != nil {
		t.Fatal("Workload lookup broken")
	}

	// Schema version gate.
	bad := strings.Replace(readAll(t, path), `"schema": 1`, `"schema": 99`, 1)
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(badPath); err == nil {
		t.Fatal("future schema accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("absent file accepted")
	}
	if err := os.WriteFile(badPath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(badPath); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func readAll(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestWorkloadCatalog runs every canonical suite once at quick settings and
// checks the recorded shape: the deterministic metrics must carry tight
// thresholds and the solver workloads must surface branch-and-bound effort.
func TestWorkloadCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every canonical workload")
	}
	r := QuickRunner()
	for _, suite := range SuiteNames {
		ws, err := Workloads(suite)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) == 0 {
			t.Fatalf("suite %s empty", suite)
		}
		s, err := r.RunSuite(suite, ws, nil)
		if err != nil {
			t.Fatalf("suite %s: %v", suite, err)
		}
		if len(s.Workloads) != len(ws) {
			t.Fatalf("suite %s: %d results for %d workloads", suite, len(s.Workloads), len(ws))
		}
		for _, w := range s.Workloads {
			if w.Metric("wall_ns_min") == nil || w.Metric("alloc_bytes_per_op") == nil {
				t.Fatalf("%s/%s missing base metrics: %+v", suite, w.Name, w.Metrics)
			}
			if strings.HasPrefix(w.Name, "sched_") || strings.HasPrefix(w.Name, "placement_") {
				if m := w.Metric("solver_nodes_per_op"); m == nil || m.Value <= 0 {
					t.Fatalf("%s/%s has no solver stats", suite, w.Name)
				}
				if m := w.Metric("objective"); m == nil || m.Value <= 0 {
					t.Fatalf("%s/%s has no objective", suite, w.Name)
				}
			}
		}
	}
	if _, err := Workloads("nope"); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

// TestWorkloadDeterminism re-runs the solver suite and checks that every
// gated deterministic metric is identical across runs — the property the
// committed baselines and the CI gate rest on.
func TestWorkloadDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the solver suite twice")
	}
	run := func() Suite {
		ws, err := Workloads(SuiteSolver)
		if err != nil {
			t.Fatal(err)
		}
		s, err := QuickRunner().RunSuite(SuiteSolver, ws, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	for _, wa := range a.Workloads {
		wb := b.Workload(wa.Name)
		for _, name := range []string{"solver_nodes_per_op", "solver_pivots_per_op", "objective"} {
			ma, mb := wa.Metric(name), wb.Metric(name)
			if (ma == nil) != (mb == nil) {
				t.Fatalf("%s: %s present on one side only", wa.Name, name)
			}
			if ma != nil && ma.Value != mb.Value {
				t.Fatalf("%s: %s = %g then %g — not deterministic", wa.Name, name, ma.Value, mb.Value)
			}
		}
	}

	var buf bytes.Buffer
	if _, err := QuickRunner().RunSuite(SuiteSolver, []Workload{{Name: "x", Run: func() (Sample, error) {
		return Sample{}, nil
	}}}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "solver/x") {
		t.Fatalf("progress output = %q", buf.String())
	}
}
