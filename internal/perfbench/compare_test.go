package perfbench

import (
	"bytes"
	"strings"
	"testing"
)

func mkSuite(name string, workloads ...WorkloadResult) Suite {
	return Suite{Schema: SchemaVersion, Suite: name, Workloads: workloads}
}

func TestCompareGates(t *testing.T) {
	base := mkSuite("solver", WorkloadResult{Name: "w", Metrics: []Metric{
		{Name: "wall_ns_min", Value: 1000, Threshold: 1.5},
		{Name: "solver_nodes_per_op", Value: 100, Threshold: 0.01},
		{Name: "peak_heap_bytes", Value: 1 << 20}, // informational
	}})

	// Within every gate: wall may grow 2.5x, nodes 1%.
	cur := mkSuite("solver", WorkloadResult{Name: "w", Metrics: []Metric{
		{Name: "wall_ns_min", Value: 2400, Threshold: 1.5},
		{Name: "solver_nodes_per_op", Value: 100, Threshold: 0.01},
		{Name: "peak_heap_bytes", Value: 64 << 20}, // huge, but ungated
	}})
	res := Compare(base, cur, 1)
	if n := len(res.Regressions()); n != 0 {
		t.Fatalf("unexpected regressions: %+v", res.Regressions())
	}

	// Wall past the gate.
	cur.Workloads[0].Metrics[0].Value = 2600
	res = Compare(base, cur, 1)
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Metric != "wall_ns_min" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Allowed != 2500 || regs[0].Ratio != 2.6 {
		t.Fatalf("delta = %+v", regs[0])
	}

	// Slack widens the gate: the same run passes at slack 2 (allowed 4000).
	if regs := Compare(base, cur, 2).Regressions(); len(regs) != 0 {
		t.Fatalf("slack 2 still regressed: %+v", regs)
	}

	// A 2% node increase breaches the 1% gate even at slack 1 but not the
	// wall gate.
	cur.Workloads[0].Metrics[0].Value = 1000
	cur.Workloads[0].Metrics[1].Value = 102
	regs = Compare(base, cur, 1).Regressions()
	if len(regs) != 1 || regs[0].Metric != "solver_nodes_per_op" {
		t.Fatalf("regressions = %+v", regs)
	}
}

func TestCompareMissingSides(t *testing.T) {
	base := mkSuite("solver",
		WorkloadResult{Name: "gone", Metrics: []Metric{{Name: "wall_ns_min", Value: 10, Threshold: 1.5}}},
		WorkloadResult{Name: "stay", Metrics: []Metric{
			{Name: "wall_ns_min", Value: 10, Threshold: 1.5},
			{Name: "dropped_info", Value: 5}, // informational: vanishing is fine
		}},
	)
	cur := mkSuite("solver",
		WorkloadResult{Name: "stay", Metrics: []Metric{
			{Name: "wall_ns_min", Value: 10, Threshold: 1.5},
			{Name: "fresh_metric", Value: 3},
		}},
		WorkloadResult{Name: "brand_new", Metrics: []Metric{{Name: "wall_ns_min", Value: 7, Threshold: 1.5}}},
	)
	res := Compare(base, cur, 1)

	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Workload != "gone" || regs[0].Missing != "current" {
		t.Fatalf("regressions = %+v", regs)
	}
	var newCount, infoMissing int
	for _, d := range res.Deltas {
		if d.Missing == "baseline" {
			newCount++
		}
		if d.Metric == "dropped_info" && d.Regressed {
			t.Fatal("informational metric loss gated")
		}
		if d.Metric == "dropped_info" {
			infoMissing++
		}
	}
	if newCount != 2 { // fresh_metric + brand_new/wall_ns_min
		t.Fatalf("new-side deltas = %d, want 2 (%+v)", newCount, res.Deltas)
	}
	if infoMissing != 1 {
		t.Fatal("informational missing metric not recorded")
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := mkSuite("s", WorkloadResult{Name: "w", Metrics: []Metric{{Name: "m", Value: 0, Threshold: 0.01}}})
	cur := mkSuite("s", WorkloadResult{Name: "w", Metrics: []Metric{{Name: "m", Value: 0, Threshold: 0.01}}})
	if regs := Compare(base, cur, 1).Regressions(); len(regs) != 0 {
		t.Fatalf("0 vs 0 regressed: %+v", regs)
	}
	cur.Workloads[0].Metrics[0].Value = 5
	regs := Compare(base, cur, 1).Regressions()
	if len(regs) != 1 || regs[0].Ratio != 0 {
		t.Fatalf("0 -> 5 delta = %+v", regs)
	}
}

func TestCompareWriteTable(t *testing.T) {
	base := mkSuite("solver",
		WorkloadResult{Name: "w", Metrics: []Metric{
			{Name: "wall_ns_min", Value: 1000, Threshold: 1.5},
			{Name: "peak_heap_bytes", Value: 100},
		}},
	)
	cur := mkSuite("solver",
		WorkloadResult{Name: "w", Metrics: []Metric{
			{Name: "wall_ns_min", Value: 9000, Threshold: 1.5},
			{Name: "peak_heap_bytes", Value: 120},
		}},
	)
	var buf bytes.Buffer
	if err := Compare(base, cur, 1).WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FAIL", "wall_ns_min", "info", "1 regression(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// FAIL rows sort first.
	if strings.Index(out, "FAIL") > strings.Index(out, "info") {
		t.Fatalf("regressions not first:\n%s", out)
	}

	var ok bytes.Buffer
	if err := Compare(base, base, 1).WriteTable(&ok); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ok.String(), "no regressions") {
		t.Fatalf("clean table = %s", ok.String())
	}
}
