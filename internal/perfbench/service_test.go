package perfbench

import "testing"

// TestServiceSequentialCache pins the deterministic half of the service
// suite: 16 sequential requests over 4 distinct scenarios must miss exactly
// 4 times (a 0.75 hit ratio) and surface the solver effort behind the
// misses. These are the exact-gated Model metrics BENCH_service.json rests
// on.
func TestServiceSequentialCache(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the four paper instances")
	}
	ws := serviceWorkloads()
	if len(ws) != 3 || ws[0].Name != "service_sequential_cache" {
		t.Fatalf("unexpected service workloads: %+v", ws)
	}
	sample, err := ws[0].Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := sample.Model["cache_hit_ratio"]; got != 0.75 {
		t.Fatalf("cache_hit_ratio = %v, want exactly 0.75", got)
	}
	if got := sample.Model["cache_misses"]; got != 4 {
		t.Fatalf("cache_misses = %v, want 4", got)
	}
	if sample.Nodes <= 0 || sample.Pivots <= 0 {
		t.Fatalf("no solver effort surfaced: nodes=%d pivots=%d", sample.Nodes, sample.Pivots)
	}
	if sample.Info["requests_per_sec"] <= 0 {
		t.Fatalf("requests_per_sec missing: %+v", sample.Info)
	}
}

// TestServiceConcurrentClients runs the 8-client workload once and checks
// the service survives contention without errors and reports its RED view.
func TestServiceConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the four paper instances under contention")
	}
	var w Workload
	for _, cand := range serviceWorkloads() {
		if cand.Name == "service_clients_8" {
			w = cand
		}
	}
	if w.Run == nil {
		t.Fatal("service_clients_8 workload missing")
	}
	sample, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := sample.Info["cache_hit_ratio"]; ratio < 0 || ratio > 1 {
		t.Fatalf("cache_hit_ratio = %v, want within [0, 1]", ratio)
	}
	if sample.Info["request_p50_sec"] <= 0 || sample.Info["request_p99_sec"] <= 0 {
		t.Fatalf("latency quantiles missing: %+v", sample.Info)
	}
}
