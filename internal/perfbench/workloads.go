package perfbench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/core"
	"insitu/internal/coupling"
	"insitu/internal/experiments"
	"insitu/internal/iosim"
	"insitu/internal/obs"
	"insitu/internal/replan"
	"insitu/internal/solvercheck"
)

// Suite names, which double as the BENCH_<name>.json file stems.
const (
	SuiteSolver   = "solver"
	SuitePipeline = "pipeline"
	SuiteIOSim    = "iosim"
	SuiteService  = "service"
)

// SuiteNames lists the canonical suites in run order.
var SuiteNames = []string{SuiteSolver, SuitePipeline, SuiteIOSim, SuiteService}

// BenchWorkers is the branch-and-bound pool width the scheduling workloads
// run with. It is fixed (not runtime.NumCPU()) so the recorded
// nodes/pivots metrics are byte-stable across hosts — the parallel search
// is deterministic per width, not across widths.
const BenchWorkers = 8

// BenchFileName returns the repo-root baseline file for a suite.
func BenchFileName(suite string) string { return "BENCH_" + suite + ".json" }

// Workloads returns the canonical workload set for a suite. Every workload
// is deterministic per iteration (fixed seeds, fixed instances), so its
// counter metrics are byte-stable across runs and only wall time moves.
func Workloads(suite string) ([]Workload, error) {
	switch suite {
	case SuiteSolver:
		return solverWorkloads(), nil
	case SuitePipeline:
		return pipelineWorkloads(), nil
	case SuiteIOSim:
		return iosimWorkloads(), nil
	case SuiteService:
		return serviceWorkloads(), nil
	}
	return nil, fmt.Errorf("perfbench: unknown suite %q (have %v)", suite, SuiteNames)
}

// schedSolve builds a scheduling-solve workload over a fixed instance and
// reports branch-and-bound effort plus the optimal objective as a model
// metric (any objective drift is a solver behaviour change). Solves run at
// BenchWorkers width and record it as solver_workers, so the bench gate
// can prove the suite did not silently fall back to the serial search.
// Warm-start health is recorded alongside: warm_solves and fallback_colds
// are deterministic per width and exact-gated (a rising fallback count means
// the dual-simplex warm re-solves stopped surviving the branching pattern),
// and `benchobs check` additionally gates their ratio across the suite. The
// revised-simplex internals (primal/dual pivot split, refactorizations, eta
// peak) ride along as informational metrics.
func schedSolve(name string, specs []core.AnalysisSpec, res core.Resources) Workload {
	return schedSolveOpts(name, specs, res, core.SolveOptions{Workers: BenchWorkers})
}

func schedSolveOpts(name string, specs []core.AnalysisSpec, res core.Resources, opts core.SolveOptions) Workload {
	return Workload{Name: name, Run: func() (Sample, error) {
		rec, err := core.Solve(specs, res, opts)
		if err != nil {
			return Sample{}, err
		}
		return Sample{
			Nodes:  rec.Stats.Nodes,
			Pivots: rec.Stats.Pivots,
			Model: map[string]float64{
				"objective":      rec.Objective,
				"solver_workers": float64(rec.Stats.Workers),
				"warm_solves":    float64(rec.Stats.WarmSolves),
				"fallback_colds": float64(rec.Stats.FallbackColds),
			},
			Info: map[string]float64{
				"primal_pivots":    float64(rec.Stats.PrimalPivots),
				"dual_pivots":      float64(rec.Stats.DualPivots),
				"refactorizations": float64(rec.Stats.Refactorizations),
				"eta_peak":         float64(rec.Stats.EtaPeak),
			},
		}, nil
	}}
}

// largeSparseSpecs builds the deterministic synthetic campaign behind
// sched_large_sparse: n analyses with coarse minimum intervals, so the
// compact model under a mode cap becomes a few thousand 0-1 columns over a
// few hundred rows with ~3 nonzeros per column — the large-sparse shape
// where a dense tableau pays O(rows x columns) per pivot and the revised
// simplex pays O(column nonzeros).
func largeSparseSpecs(n int) []core.AnalysisSpec {
	rng := rand.New(rand.NewSource(271828))
	specs := make([]core.AnalysisSpec, n)
	for i := range specs {
		specs[i] = core.AnalysisSpec{
			Name:        fmt.Sprintf("a%03d", i),
			CT:          0.25 + 0.25*float64(rng.Intn(12)),
			OT:          0.25 * float64(rng.Intn(4)),
			FM:          int64(rng.Intn(64)) << 20,
			CM:          int64(rng.Intn(64)) << 20,
			OM:          int64(rng.Intn(64)) << 20,
			// Integer weights keep the objective integral, so branch and
			// bound can use its incumbent+1 pruning fast path; fractional
			// weights here create a plateau of equal-value schedules that
			// explodes the node count.
			Weight:      []float64{1, 1, 2, 3}[rng.Intn(4)],
			MinInterval: []int{50, 100, 200, 250}[rng.Intn(4)],
		}
	}
	return specs
}

// solverWorkloads covers the paper's scheduling instances: LAMMPS
// water+ions A1-A4 (Table 5), rhodopsin R1-R3 (Table 6), FLASH Sedov F1-F3
// (Table 8), the placement variant, the lexicographic variant, and a seeded
// solvercheck differential batch as the verification-throughput proxy.
func solverWorkloads() []Workload {
	mem := int64(12) << 30
	ws := []Workload{
		schedSolve("sched_waterions_a1a4_t10",
			experiments.WaterIonsSpecs(16384),
			core.Resources{Steps: 1000, TimeThreshold: 129.35, MemThreshold: mem}),
		schedSolve("sched_waterions_a1a4_t5",
			experiments.WaterIonsSpecs(16384),
			core.Resources{Steps: 1000, TimeThreshold: 64.69, MemThreshold: mem}),
		schedSolve("sched_rhodopsin_r1r3_t200",
			experiments.RhodopsinSpecs(),
			core.Resources{Steps: 1000, TimeThreshold: 200, MemThreshold: mem}),
		schedSolve("sched_rhodopsin_r1r3_t20",
			experiments.RhodopsinSpecs(),
			core.Resources{Steps: 1000, TimeThreshold: 20, MemThreshold: mem}),
		schedSolve("sched_flash_f1f3_equal",
			experiments.FlashSpecs(),
			core.Resources{Steps: 1000, TimeThreshold: 43.5, MemThreshold: mem}),
		// sched_large_sparse is the revised-simplex showcase: a synthetic
		// 220-analysis campaign whose compact model (mode cap 4) is a few
		// thousand binaries over a few hundred sparse rows — far beyond the
		// paper instances, and the shape where the dense tableau paid
		// O(rows x columns) per pivot.
		schedSolveOpts("sched_large_sparse", largeSparseSpecs(220),
			core.Resources{Steps: 1000, TimeThreshold: 600, MemThreshold: 12 << 30},
			core.SolveOptions{Workers: BenchWorkers, MaxCount: 4}),
	}

	ws = append(ws, Workload{Name: "sched_flash_f1f3_lexicographic", Run: func() (Sample, error) {
		specs := experiments.FlashSpecs()
		specs[0].Weight, specs[1].Weight, specs[2].Weight = 2, 1, 2
		rec, err := core.SolveLexicographic(specs, core.Resources{Steps: 1000, TimeThreshold: 43.5, MemThreshold: mem}, core.SolveOptions{Workers: BenchWorkers})
		if err != nil {
			return Sample{}, err
		}
		return Sample{
			Nodes:  rec.Stats.Nodes,
			Pivots: rec.Stats.Pivots,
			Model: map[string]float64{
				"objective":      rec.Objective,
				"solver_workers": float64(rec.Stats.Workers),
			},
		}, nil
	}})

	ws = append(ws, Workload{Name: "placement_waterions", Run: func() (Sample, error) {
		base := experiments.WaterIonsSpecs(16384)
		specs := make([]core.PlacementSpec, len(base))
		for i, a := range base {
			specs[i] = core.PlacementSpec{AnalysisSpec: a, TransferBytes: 1 << 30}
		}
		res := core.PlacementResources{
			Resources:      core.Resources{Steps: 1000, TimeThreshold: 64.69, MemThreshold: mem},
			NetBandwidth:   2e9,
			StageMemTotal:  64 << 30,
			StageTimeTotal: 2000,
		}
		rec, err := core.SolvePlacement(specs, res, core.SolveOptions{Workers: BenchWorkers})
		if err != nil {
			return Sample{}, err
		}
		return Sample{
			Nodes:  rec.Stats.Nodes,
			Pivots: rec.Stats.Pivots,
			Model: map[string]float64{
				"objective":      rec.Objective,
				"solver_workers": float64(rec.Stats.Workers),
			},
		}, nil
	}})

	// sched_batch_scaling sweeps the paper batch at 1, 2, and 8 workers:
	// per-width pivot counts are deterministic (exact-gated), the wall-time
	// speedups are informational.
	ws = append(ws, Workload{Name: "sched_batch_scaling", Run: func() (Sample, error) {
		sample := Sample{Model: map[string]float64{}, Info: map[string]float64{}}
		var serialWall time.Duration
		for _, w := range []int{1, 2, 8} {
			nodes, pivots, objective, wall, err := solvePaperBatch(core.SolveOptions{Workers: w})
			if err != nil {
				return Sample{}, err
			}
			sample.Model[fmt.Sprintf("pivots_w%d", w)] = float64(pivots)
			if w == 1 {
				serialWall = wall
				sample.Nodes, sample.Pivots = nodes, pivots
				sample.Model["objective"] = objective
			} else if wall > 0 {
				sample.Info[fmt.Sprintf("speedup_w%d", w)] = serialWall.Seconds() / wall.Seconds()
			}
		}
		return sample, nil
	}})

	// sched_batch_warmstart isolates the warm-start win: the same batch at
	// the same width with and without warm starts. Fewer warm pivots than
	// cold is the acceptance criterion, gated exactly; the savings ratio is
	// informational.
	ws = append(ws, Workload{Name: "sched_batch_warmstart", Run: func() (Sample, error) {
		warmNodes, warmPivots, objective, _, err := solvePaperBatch(core.SolveOptions{Workers: BenchWorkers})
		if err != nil {
			return Sample{}, err
		}
		_, coldPivots, _, _, err := solvePaperBatch(core.SolveOptions{Workers: BenchWorkers, NoWarmStart: true})
		if err != nil {
			return Sample{}, err
		}
		return Sample{
			Nodes:  warmNodes,
			Pivots: warmPivots,
			Model: map[string]float64{
				"objective":   objective,
				"pivots_warm": float64(warmPivots),
				"pivots_cold": float64(coldPivots),
			},
			Info: map[string]float64{
				"warm_pivot_savings": 1 - float64(warmPivots)/float64(coldPivots),
			},
		}, nil
	}})

	// sched_flight_overhead prices the flight recorder: the paper batch bare
	// versus with a recorder attached, at the same width. The recorded event
	// count is deterministic per width (exact-gated via Model); the wall-time
	// overhead ratio is informational — the ISSUE budget is <= 5%, but wall
	// clock is too noisy to gate in CI.
	ws = append(ws, Workload{Name: "sched_flight_overhead", Run: func() (Sample, error) {
		nodes, pivots, objective, bareWall, err := solvePaperBatch(core.SolveOptions{Workers: BenchWorkers})
		if err != nil {
			return Sample{}, err
		}
		fr := obs.NewFlightRecorder(0)
		_, _, _, flightWall, err := solvePaperBatch(core.SolveOptions{Workers: BenchWorkers, Flight: fr})
		if err != nil {
			return Sample{}, err
		}
		sample := Sample{
			Nodes:  nodes,
			Pivots: pivots,
			Model: map[string]float64{
				"objective":      objective,
				"flight_events":  float64(fr.Total()),
				"solver_workers": BenchWorkers,
			},
			Info: map[string]float64{},
		}
		if bareWall > 0 {
			sample.Info["flight_overhead_ratio"] = flightWall.Seconds() / bareWall.Seconds()
		}
		return sample, nil
	}})

	ws = append(ws, Workload{Name: "solvercheck_scenario_batch", Run: func() (Sample, error) {
		// Fixed seed: the same 24 differential instances every iteration.
		rng := rand.New(rand.NewSource(1789))
		for i := 0; i < 24; i++ {
			specs, res := solvercheck.RandScenario(rng, solvercheck.ScenarioConfig{MaxAnalyses: 3, MaxSteps: 10})
			if err := solvercheck.CheckScenario(rng, specs, res, solvercheck.ScenarioChecks{BruteForce: true}); err != nil {
				return Sample{}, fmt.Errorf("instance %d: %w", i, err)
			}
		}
		return Sample{}, nil
	}})

	return ws
}

// solvePaperBatch solves the A1-A4/R1-R3/F1-F3 scheduling batch (the
// paper's Table 5/6/8 instances the sched_* workloads cover individually)
// with the given options and returns the summed branch-and-bound effort and
// wall time.
func solvePaperBatch(opts core.SolveOptions) (nodes, pivots int, objective float64, wall time.Duration, err error) {
	mem := int64(12) << 30
	instances := []struct {
		specs []core.AnalysisSpec
		res   core.Resources
	}{
		{experiments.WaterIonsSpecs(16384), core.Resources{Steps: 1000, TimeThreshold: 129.35, MemThreshold: mem}},
		{experiments.WaterIonsSpecs(16384), core.Resources{Steps: 1000, TimeThreshold: 64.69, MemThreshold: mem}},
		{experiments.RhodopsinSpecs(), core.Resources{Steps: 1000, TimeThreshold: 200, MemThreshold: mem}},
		{experiments.RhodopsinSpecs(), core.Resources{Steps: 1000, TimeThreshold: 20, MemThreshold: mem}},
		{experiments.FlashSpecs(), core.Resources{Steps: 1000, TimeThreshold: 43.5, MemThreshold: mem}},
	}
	t0 := time.Now()
	for _, in := range instances {
		rec, err := core.Solve(in.specs, in.res, opts)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		nodes += rec.Stats.Nodes
		pivots += rec.Stats.Pivots
		objective += rec.Objective
	}
	return nodes, pivots, objective, time.Since(t0), nil
}

// FlightSolve solves one paper scheduling instance (water+ions at the 5%
// threshold) with fr attached, so live servers can expose a real gap-closure
// curve at /solve. fr is reset and named first; the recorded stream is
// deterministic at BenchWorkers.
func FlightSolve(fr *obs.FlightRecorder) error {
	fr.Reset()
	fr.SetName("sched_waterions_a1a4_t5pct")
	_, err := core.Solve(experiments.WaterIonsSpecs(16384),
		core.Resources{Steps: 1000, TimeThreshold: 64.69, MemThreshold: int64(12) << 30},
		core.SolveOptions{Workers: BenchWorkers, Flight: fr})
	return err
}

// benchKernel is a deterministic synthetic analysis kernel: Analyze does a
// fixed amount of arithmetic, Output writes a fixed payload. It keeps the
// pipeline workloads self-contained and noise-free.
type benchKernel struct {
	name    string
	work    int
	payload []byte
	acc     float64
}

func (k *benchKernel) Name() string                     { return k.name }
func (k *benchKernel) Setup() (int64, error)            { k.acc = 0; return 1 << 10, nil }
func (k *benchKernel) PreStep(step int) (int64, error)  { k.acc += float64(step); return 16, nil }
func (k *benchKernel) Free()                            {}
func (k *benchKernel) Analyze(step int) (int64, error) {
	s := k.acc
	for i := 0; i < k.work; i++ {
		s += float64(i%7) * 1.0000001
	}
	k.acc = s
	return 1 << 8, nil
}
func (k *benchKernel) Output(dst io.Writer) (int64, error) {
	n, err := dst.Write(k.payload)
	return int64(n), err
}

// benchRecommendation builds a fixed schedule: every kernel analyzes every
// `itv` steps and outputs every other analysis.
func benchRecommendation(names []string, steps, itv int) *core.Recommendation {
	rec := &core.Recommendation{}
	for _, name := range names {
		var as, os []int
		for s := itv; s <= steps; s += itv {
			as = append(as, s)
			if len(as)%2 == 0 {
				os = append(os, s)
			}
		}
		rec.Schedules = append(rec.Schedules, core.AnalysisSchedule{
			Name: name, Enabled: true, Count: len(as), Outputs: len(os),
			OutputEvery: 2, AnalysisSteps: as, OutputSteps: os,
		})
	}
	return rec
}

// InstrumentedPipeline builds the canonical pipeline workload — two
// synthetic kernels on a fixed 240-step schedule — wired to the given
// observability sinks (each may be nil). The pipeline suite measures it;
// benchobs serve loops it to keep live counters moving under /metrics.
func InstrumentedPipeline(tr *obs.Tracer, reg *obs.Registry, led *obs.EventLog) *coupling.Runner {
	const steps, itv = 240, 4
	names := []string{"k1", "k2"}
	kernels := map[string]analysis.Kernel{}
	for _, n := range names {
		kernels[n] = &benchKernel{name: n, work: 2000, payload: make([]byte, 4096)}
	}
	sink := 0.0
	return &coupling.Runner{
		Step: func() {
			for i := 0; i < 400; i++ {
				sink += float64(i) * 1.0000001
			}
		},
		Kernels: kernels,
		Rec:     benchRecommendation(names, steps, itv),
		Res:     core.Resources{Steps: steps, TimeThreshold: 1000},
		Trace:   tr,
		Metrics: reg,
		Ledger:  led,
	}
}

// pipelineWorkloads covers the coupled execution path: the step loop bare,
// the step loop with full telemetry (tracer + metrics + ledger, measuring
// observability overhead), and ledger append throughput on its own.
func pipelineWorkloads() []Workload {
	return []Workload{
		{Name: "coupling_runner_bare", Run: func() (Sample, error) {
			rep, err := InstrumentedPipeline(nil, nil, nil).Run()
			if err != nil {
				return Sample{}, err
			}
			return Sample{Model: map[string]float64{
				"analyses": float64(rep.Kernel("k1").Analyses + rep.Kernel("k2").Analyses),
				"outputs":  float64(rep.Kernel("k1").Outputs + rep.Kernel("k2").Outputs),
			}}, nil
		}},
		{Name: "coupling_runner_instrumented", Run: func() (Sample, error) {
			tr := obs.NewTracer()
			reg := obs.NewRegistry()
			led := obs.NewEventLog(io.Discard)
			rep, err := InstrumentedPipeline(tr, reg, led).Run()
			if err != nil {
				return Sample{}, err
			}
			if err := led.Close(); err != nil {
				return Sample{}, err
			}
			return Sample{Model: map[string]float64{
				"analyses":      float64(rep.Kernel("k1").Analyses + rep.Kernel("k2").Analyses),
				"trace_events":  float64(tr.Len()),
				"ledger_events": float64(led.Len()),
			}}, nil
		}},
		// sched_replan drives the closed loop end to end: the hardest corpus
		// scenario (bandwidth degrades 3x mid-run) simulated static and
		// adaptive at BenchWorkers width. The canonical-serial re-solve inside
		// replan makes every model metric byte-stable across hosts and pool
		// widths; any drift in values or replan counts is a behaviour change
		// in the solver, the monitor, or the rescheduler.
		{Name: "sched_replan", Run: func() (Sample, error) {
			var sc replan.Scenario
			for _, c := range experiments.ReplanScenarios() {
				if c.Name == "bandwidth_degradation_3x" {
					sc = c
				}
			}
			rec, err := core.Solve(sc.Specs, sc.Resources(), core.SolveOptions{Workers: BenchWorkers})
			if err != nil {
				return Sample{}, err
			}
			static, err := replan.Simulate(sc, false, BenchWorkers)
			if err != nil {
				return Sample{}, err
			}
			adaptive, err := replan.Simulate(sc, true, BenchWorkers)
			if err != nil {
				return Sample{}, err
			}
			return Sample{
				Nodes:  rec.Stats.Nodes,
				Pivots: rec.Stats.Pivots,
				Model: map[string]float64{
					"objective":      rec.Objective,
					"value_static":   static.Value,
					"value_adaptive": adaptive.Value,
					"replans":        float64(adaptive.Replans),
					"decisions":      float64(len(adaptive.Records)),
					"ledger_events":  float64(len(adaptive.Events)),
				},
			}, nil
		}},
		{Name: "eventlog_append", Run: func() (Sample, error) {
			led := obs.NewEventLog(io.Discard)
			for i := 1; i <= 2000; i++ {
				led.Event(obs.LedgerStep, "", i, time.Microsecond)
			}
			if err := led.Close(); err != nil {
				return Sample{}, err
			}
			return Sample{Model: map[string]float64{"ledger_events": float64(led.Len())}}, nil
		}},
	}
}

// iosimWorkloads covers the storage models: the burst-buffer sustained
// drain (the Table 7 NVRAM what-if), the backpressure path where outputs
// outrun the drain, and the plain GPFS write model.
func iosimWorkloads() []Workload {
	return []Workload{
		{Name: "burstbuffer_sustained_drain", Run: func() (Sample, error) {
			bb := iosim.NewBurstBuffer(1 << 41)
			var total time.Duration
			for i := 0; i < 50; i++ {
				total += bb.SustainedOutputTime(91<<30, 10, 500*time.Second, 32768)
			}
			return Sample{Model: map[string]float64{"visible_seconds": total.Seconds() / 50}}, nil
		}},
		{Name: "burstbuffer_backpressure", Run: func() (Sample, error) {
			// Capacity of one write: every subsequent write stalls on the
			// drain, exercising the backlog arithmetic.
			bb := iosim.NewBurstBuffer(92 << 30)
			var total time.Duration
			for i := 0; i < 50; i++ {
				total += bb.SustainedOutputTime(91<<30, 10, 30*time.Second, 32768)
			}
			return Sample{Model: map[string]float64{"visible_seconds": total.Seconds() / 50}}, nil
		}},
		{Name: "gpfs_write_model", Run: func() (Sample, error) {
			t := iosim.SustainedGPFS()
			var total time.Duration
			for w := 1; w <= 4096; w *= 2 {
				for i := 0; i < 100; i++ {
					total += t.WriteTime(1<<30, w)
				}
			}
			return Sample{Model: map[string]float64{"visible_seconds": total.Seconds()}}, nil
		}},
	}
}
