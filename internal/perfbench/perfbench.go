// Package perfbench is the repo's performance observatory: canonical,
// seeded benchmark workloads over the solver stack (the paper's Table 5-8
// MILP instances), the coupled execution pipeline, and the I/O models, run
// with warmup/repetition/outlier-trim and captured into a versioned JSON
// schema (the BENCH_*.json files at the repository root). The paper's
// central claim is that optimal scheduling is cheap enough to run inline
// with the simulation (0.17-1.36 s per CPLEX solve); these baselines pin
// this repository's equivalent trajectory so every later change is measured
// against a recorded floor instead of a feeling.
//
// Metric semantics: every metric is lower-is-better. Wall-clock metrics are
// noisy across hosts, so each metric carries its own relative threshold:
// Compare flags a regression only when current > baseline*(1+Threshold*slack).
// Deterministic metrics (branch-and-bound nodes, simplex pivots, modelled
// seconds) carry near-zero thresholds and catch any behavioural drift;
// wall-clock metrics carry generous ones and catch order-of-magnitude
// regressions. A zero threshold marks a metric as informational: recorded,
// reported, never gated.
package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion identifies the BENCH_*.json layout; readers reject files
// from a different major schema rather than misreading them.
const SchemaVersion = 1

// Metric is one recorded measurement of a workload. Lower is better.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Threshold is the maximum tolerated relative increase over a baseline
	// before Compare flags a regression (scaled by the compare slack).
	// Zero marks the metric informational.
	Threshold float64 `json:"threshold,omitempty"`
}

// WorkloadResult is one workload's captured metrics.
type WorkloadResult struct {
	Name    string   `json:"name"`
	Reps    int      `json:"reps"` // measured repetitions after trimming
	Metrics []Metric `json:"metrics"`
}

// Metric returns the named metric, or nil.
func (w *WorkloadResult) Metric(name string) *Metric {
	for i := range w.Metrics {
		if w.Metrics[i].Name == name {
			return &w.Metrics[i]
		}
	}
	return nil
}

// Suite is one BENCH_*.json file.
type Suite struct {
	Schema    int              `json:"schema"`
	Suite     string           `json:"suite"`
	Workloads []WorkloadResult `json:"workloads"`
}

// Workload returns the named workload result, or nil.
func (s *Suite) Workload(name string) *WorkloadResult {
	for i := range s.Workloads {
		if s.Workloads[i].Name == name {
			return &s.Workloads[i]
		}
	}
	return nil
}

// WriteFile writes the suite as indented JSON (workloads sorted by name, so
// committed baselines diff cleanly).
func (s Suite) WriteFile(path string) error {
	s.Schema = SchemaVersion
	sort.Slice(s.Workloads, func(i, j int) bool { return s.Workloads[i].Name < s.Workloads[j].Name })
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses a BENCH_*.json file and checks its schema version.
func ReadFile(path string) (Suite, error) {
	var s Suite
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	if s.Schema != SchemaVersion {
		return s, fmt.Errorf("perfbench: %s: schema v%d, this reader understands v%d", path, s.Schema, SchemaVersion)
	}
	return s, nil
}

// Sample is what one workload iteration reports back to the runner beyond
// the wall time the runner measures itself.
type Sample struct {
	// Nodes and Pivots accumulate branch-and-bound effort across the
	// iteration's solves; zero means the workload has no solver component.
	Nodes  int
	Pivots int
	// Model holds deterministic model outputs (seconds, bytes, counts) keyed
	// by metric name; they are gated near-exactly.
	Model map[string]float64
	// Info holds measured-but-noisy outputs (speedups, savings ratios)
	// keyed by metric name; they are recorded with a zero threshold, so
	// Compare reports them without ever gating on them.
	Info map[string]float64
}

// Workload is one canonical benchmark: a named, seeded, self-contained unit
// of work whose single iteration is Run.
type Workload struct {
	Name string
	// Run performs one iteration and reports its sample.
	Run func() (Sample, error)
}

// Runner executes workloads with warmup, repetition, and outlier trimming.
// The zero value is not ready; use NewRunner.
type Runner struct {
	// Warmup iterations run before measurement (default 1).
	Warmup int
	// Reps is the number of measured iterations (default 7).
	Reps int
	// Trim drops the slowest and fastest Trim wall samples before
	// aggregating (default 1; forced to keep at least one sample).
	Trim int

	now func() time.Time
}

// NewRunner returns a runner with the default full-fidelity settings.
func NewRunner() *Runner { return &Runner{Warmup: 1, Reps: 7, Trim: 1, now: time.Now} }

// QuickRunner returns the reduced-repetition runner the CI smoke job uses:
// same per-iteration work (so per-op metrics stay comparable with full
// baselines), fewer repetitions.
func QuickRunner() *Runner { return &Runner{Warmup: 1, Reps: 3, Trim: 0, now: time.Now} }

// SetClock injects a deterministic clock for tests.
func (r *Runner) SetClock(now func() time.Time) { r.now = now }

// Wall-metric thresholds: generous, because wall time moves with the host.
// Deterministic counters get tight ones. See the package comment.
const (
	wallThreshold  = 1.5  // 2.5x baseline allowed at slack 1
	allocThreshold = 0.5  // 1.5x baseline allowed at slack 1
	exactThreshold = 0.01 // 1% drift allowed at slack 1
)

// Measure runs one workload and aggregates its samples into metrics.
func (r *Runner) Measure(w Workload) (WorkloadResult, error) {
	if r.now == nil {
		r.now = time.Now
	}
	reps := r.Reps
	if reps <= 0 {
		reps = 7
	}
	for i := 0; i < r.Warmup; i++ {
		if _, err := w.Run(); err != nil {
			return WorkloadResult{}, fmt.Errorf("perfbench: %s warmup: %w", w.Name, err)
		}
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	peakHeap := before.HeapAlloc

	walls := make([]float64, 0, reps)
	var last Sample
	for i := 0; i < reps; i++ {
		t0 := r.now()
		s, err := w.Run()
		wall := r.now().Sub(t0)
		if err != nil {
			return WorkloadResult{}, fmt.Errorf("perfbench: %s rep %d: %w", w.Name, i, err)
		}
		walls = append(walls, float64(wall.Nanoseconds()))
		last = s
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peakHeap {
			peakHeap = ms.HeapAlloc
		}
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	kept := trim(walls, r.Trim)
	res := WorkloadResult{Name: w.Name, Reps: len(kept)}
	res.Metrics = append(res.Metrics,
		Metric{Name: "wall_ns_min", Value: kept[0], Unit: "ns/op", Threshold: wallThreshold},
		Metric{Name: "wall_ns_median", Value: median(kept), Unit: "ns/op"},
		Metric{Name: "alloc_bytes_per_op", Value: float64(after.TotalAlloc-before.TotalAlloc) / float64(reps), Unit: "B/op", Threshold: allocThreshold},
		Metric{Name: "allocs_per_op", Value: float64(after.Mallocs-before.Mallocs) / float64(reps), Unit: "allocs/op", Threshold: allocThreshold},
		Metric{Name: "peak_heap_bytes", Value: float64(peakHeap), Unit: "B"},
	)
	if last.Nodes > 0 || last.Pivots > 0 {
		res.Metrics = append(res.Metrics,
			Metric{Name: "solver_nodes_per_op", Value: float64(last.Nodes), Unit: "nodes/op", Threshold: exactThreshold},
			Metric{Name: "solver_pivots_per_op", Value: float64(last.Pivots), Unit: "pivots/op", Threshold: exactThreshold},
		)
	}
	modelKeys := make([]string, 0, len(last.Model))
	for k := range last.Model {
		modelKeys = append(modelKeys, k)
	}
	sort.Strings(modelKeys)
	for _, k := range modelKeys {
		res.Metrics = append(res.Metrics, Metric{Name: k, Value: last.Model[k], Unit: "model", Threshold: exactThreshold})
	}
	infoKeys := make([]string, 0, len(last.Info))
	for k := range last.Info {
		infoKeys = append(infoKeys, k)
	}
	sort.Strings(infoKeys)
	for _, k := range infoKeys {
		res.Metrics = append(res.Metrics, Metric{Name: k, Value: last.Info[k], Unit: "info"})
	}
	return res, nil
}

// RunSuite measures every workload into one suite.
func (r *Runner) RunSuite(name string, workloads []Workload, progress io.Writer) (Suite, error) {
	s := Suite{Schema: SchemaVersion, Suite: name}
	for _, w := range workloads {
		if progress != nil {
			fmt.Fprintf(progress, "  %s/%s...\n", name, w.Name)
		}
		res, err := r.Measure(w)
		if err != nil {
			return s, err
		}
		s.Workloads = append(s.Workloads, res)
	}
	sort.Slice(s.Workloads, func(i, j int) bool { return s.Workloads[i].Name < s.Workloads[j].Name })
	return s, nil
}

// trim sorts walls and drops n from each end, always keeping at least one.
func trim(walls []float64, n int) []float64 {
	sorted := append([]float64(nil), walls...)
	sort.Float64s(sorted)
	if n > 0 && len(sorted)-2*n >= 1 {
		sorted = sorted[n : len(sorted)-n]
	}
	return sorted
}

// median of a sorted slice.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
