package perfbench

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"insitu/internal/core"
	"insitu/internal/experiments"
	"insitu/internal/obs"
	"insitu/internal/scenario"
	"insitu/internal/schedd"
)

// serviceScenarios returns the four paper instances as scenario documents —
// the same water+ions/rhodopsin/FLASH problems the solver suite times, here
// posted through the schedd service pipeline so the suite measures request
// overhead, admission, and the solution cache rather than raw solves.
func serviceScenarios() []scenario.Problem {
	mem := int64(12) << 30
	return []scenario.Problem{
		scenario.FromSpecs(experiments.WaterIonsSpecs(16384),
			core.Resources{Steps: 1000, TimeThreshold: 129.35, MemThreshold: mem}),
		scenario.FromSpecs(experiments.WaterIonsSpecs(16384),
			core.Resources{Steps: 1000, TimeThreshold: 64.69, MemThreshold: mem}),
		scenario.FromSpecs(experiments.RhodopsinSpecs(),
			core.Resources{Steps: 1000, TimeThreshold: 200, MemThreshold: mem}),
		scenario.FromSpecs(experiments.FlashSpecs(),
			core.Resources{Steps: 1000, TimeThreshold: 43.5, MemThreshold: mem}),
	}
}

// serviceRequests is the request count every service workload issues per
// iteration: each of the four scenarios four times, so exactly four requests
// miss and the rest are served from the cache (or coalesced under load).
const serviceRequests = 16

// snapshotValue sums a metric family's values across its label sets.
func snapshotValue(snap []obs.Metric, name string) float64 {
	var v float64
	for _, m := range snap {
		if m.Name == name {
			v += m.Value
		}
	}
	return v
}

// snapshotHistogram returns the first histogram series with the given name.
func snapshotHistogram(snap []obs.Metric, name string) (obs.Metric, bool) {
	for _, m := range snap {
		if m.Name == name && m.Kind == "histogram" {
			return m, true
		}
	}
	return obs.Metric{}, false
}

// serviceIteration drives serviceRequests requests through a fresh schedd
// server from the given number of concurrent clients and reports the RED
// view: request throughput, p50/p99 latency from the service's own
// histogram, and the cache-hit ratio. Sequential runs (clients == 1) have a
// deterministic hit pattern — 4 misses then 12 hits — so their ratio is
// exact-gated via Model; concurrent runs race misses against coalescing, so
// theirs is informational.
func serviceIteration(clients int) (Sample, error) {
	reg := obs.NewRegistry()
	s := schedd.New(schedd.Config{Workers: BenchWorkers, Registry: reg})
	problems := serviceScenarios()

	t0 := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < serviceRequests; i += clients {
				req := schedd.SolveRequest{Scenario: problems[i%len(problems)]}
				resp, code := s.Process(context.Background(), fmt.Sprintf("bench-%02d", i), req)
				if code != http.StatusOK {
					errs[c] = fmt.Errorf("request %d: status %d (%+v)", i, code, resp.Error)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return Sample{}, err
		}
	}

	snap := reg.Snapshot()
	if n := snapshotValue(snap, "schedd_errors_total"); n != 0 {
		return Sample{}, fmt.Errorf("service errored %v times", n)
	}
	hits := snapshotValue(snap, "schedd_cache_hits_total")
	misses := snapshotValue(snap, "schedd_cache_misses_total")
	coalesced := snapshotValue(snap, "schedd_coalesced_total")
	sample := Sample{
		Model: map[string]float64{},
		Info: map[string]float64{
			"coalesced_requests": coalesced,
		},
	}
	ratio := hits / (hits + misses)
	if clients == 1 {
		// 4 distinct scenarios, 16 sequential requests: exactly 12 hits.
		sample.Model["cache_hit_ratio"] = ratio
		sample.Model["cache_misses"] = misses
	} else {
		sample.Info["cache_hit_ratio"] = ratio
	}
	if wall > 0 {
		sample.Info["requests_per_sec"] = serviceRequests / wall.Seconds()
	}
	if h, ok := snapshotHistogram(snap, "schedd_request_seconds"); ok {
		if p50 := h.Quantile(0.50); !math.IsNaN(p50) {
			sample.Info["request_p50_sec"] = p50
		}
		if p99 := h.Quantile(0.99); !math.IsNaN(p99) {
			sample.Info["request_p99_sec"] = p99
		}
	}
	return sample, nil
}

// serviceWorkloads covers the scheduling service: the same request mix at 1,
// 8, and 64 concurrent clients. The sequential workload pins the cache
// behaviour and the solver effort behind the four unique solves (both
// deterministic, exact-gated); the concurrent ones record the service's
// throughput and tail latency as the client count outruns the solver pool
// (MaxInFlight 4), where admission queueing and request coalescing carry the
// load.
func serviceWorkloads() []Workload {
	ws := []Workload{{Name: "service_sequential_cache", Run: func() (Sample, error) {
		sample, err := serviceIteration(1)
		if err != nil {
			return Sample{}, err
		}
		// Re-solve the unique instances directly to surface the solver effort
		// the service spent on its four cache misses.
		var nodes, pivots int
		for _, p := range serviceScenarios() {
			specs, res := p.Decode()
			rec, err := core.Solve(specs, res, core.SolveOptions{Workers: BenchWorkers})
			if err != nil {
				return Sample{}, err
			}
			nodes += rec.Stats.Nodes
			pivots += rec.Stats.Pivots
		}
		sample.Nodes, sample.Pivots = nodes, pivots
		return sample, nil
	}}}
	for _, clients := range []int{8, 64} {
		clients := clients
		ws = append(ws, Workload{
			Name: fmt.Sprintf("service_clients_%d", clients),
			Run:  func() (Sample, error) { return serviceIteration(clients) },
		})
	}
	return ws
}
