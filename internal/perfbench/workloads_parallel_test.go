package perfbench

import (
	"testing"
	"time"
)

// TestInfoMetricsInformational checks the Sample.Info path: info metrics
// are recorded with a zero threshold, after the gated model metrics.
func TestInfoMetricsInformational(t *testing.T) {
	r := QuickRunner()
	r.SetClock(func() func() time.Time {
		tick := time.Unix(0, 0)
		return func() time.Time { tick = tick.Add(time.Millisecond); return tick }
	}())
	res, err := r.Measure(Workload{Name: "w", Run: func() (Sample, error) {
		return Sample{
			Model: map[string]float64{"objective": 42},
			Info:  map[string]float64{"speedup_w8": 1.7},
		}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metric("speedup_w8")
	if m == nil {
		t.Fatalf("info metric not recorded: %+v", res.Metrics)
	}
	if m.Threshold != 0 {
		t.Fatalf("info metric carries threshold %g, want 0 (informational)", m.Threshold)
	}
	if m.Unit != "info" || m.Value != 1.7 {
		t.Fatalf("info metric = %+v", m)
	}
	if obj := res.Metric("objective"); obj == nil || obj.Threshold == 0 {
		t.Fatalf("model metric lost its gate: %+v", obj)
	}
}

// TestWarmStartWorkloadSavesPivots runs the warm-start workload once and
// checks the acceptance criterion directly: warm starts must spend fewer
// total simplex pivots than cold starts on the paper batch, and the
// recorded solver width must be the parallel one.
func TestWarmStartWorkloadSavesPivots(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the paper batch twice")
	}
	ws, err := Workloads(SuiteSolver)
	if err != nil {
		t.Fatal(err)
	}
	var run func() (Sample, error)
	for _, w := range ws {
		if w.Name == "sched_batch_warmstart" {
			run = w.Run
		}
	}
	if run == nil {
		t.Fatal("sched_batch_warmstart missing from the solver suite")
	}
	s, err := run()
	if err != nil {
		t.Fatal(err)
	}
	warm, cold := s.Model["pivots_warm"], s.Model["pivots_cold"]
	if warm <= 0 || cold <= 0 {
		t.Fatalf("degenerate pivot counts: warm=%g cold=%g", warm, cold)
	}
	if warm >= cold {
		t.Fatalf("warm starts did not reduce pivots: warm=%g cold=%g", warm, cold)
	}
	if s.Info["warm_pivot_savings"] <= 0 {
		t.Fatalf("savings ratio %g not positive", s.Info["warm_pivot_savings"])
	}
}

// TestSchedWorkloadsRecordWorkers asserts every scheduling workload records
// the parallel pool width — the metadata the CI bench gate checks so the
// suite can't silently run serial.
func TestSchedWorkloadsRecordWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scheduling workloads")
	}
	ws, err := Workloads(SuiteSolver)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.Name != "sched_waterions_a1a4_t10" && w.Name != "sched_flash_f1f3_lexicographic" && w.Name != "placement_waterions" {
			continue
		}
		s, err := w.Run()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if got := s.Model["solver_workers"]; got != BenchWorkers {
			t.Fatalf("%s recorded solver_workers=%g, want %d", w.Name, got, BenchWorkers)
		}
	}
}
