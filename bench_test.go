package insitu_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"insitu/internal/analysis/mdkernels"
	"insitu/internal/comm"
	"insitu/internal/core"
	"insitu/internal/experiments"
	"insitu/internal/iosim"
	"insitu/internal/sim/amr"
	"insitu/internal/sim/md"
)

// Each benchmark regenerates one table or figure of the paper; the
// per-iteration work is the full experiment, so -benchtime=1x gives a single
// regeneration pass. Shape assertions live in internal/experiments tests —
// here the artifact is the data itself (printed once per run via b.Log).

func BenchmarkTable4(b *testing.B) {
	cfg := experiments.Table4Config{Atoms: []int{3000, 8000}, Steps: 30, OutputEvery: 10}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable4(rows))
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable5(rows))
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable6(rows))
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable7(rows))
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable8(rows))
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	cfg := experiments.Figure2Config{Sizes: []int{1500, 3000, 6000}, StepsPerSample: 3}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure2(r))
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(3000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure4(rows))
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure5(rows))
		}
	}
}

// BenchmarkSolver times one compact-model solve of the Table-5 instance
// (paper: CPLEX 12.6.1 took 0.17-1.36 s per instance) and reports the
// branch-and-bound effort per solve.
func BenchmarkSolver(b *testing.B) {
	specs := experiments.WaterIonsSpecs(16384)
	res := core.Resources{Steps: 1000, TimeThreshold: 129.35, MemThreshold: 12 << 30}
	var nodes, pivots int
	for i := 0; i < b.N; i++ {
		rec, err := core.Solve(specs, res, core.SolveOptions{})
		if err != nil {
			b.Fatal(err)
		}
		nodes += rec.Stats.Nodes
		pivots += rec.Stats.Pivots
	}
	if nodes == 0 || pivots == 0 {
		b.Fatalf("solver stats empty: nodes=%d pivots=%d", nodes, pivots)
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
	b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
}

// TestSolverReportsStats pins the acceptance criterion behind
// BenchmarkSolver's metrics: a real instance must surface nonzero
// branch-and-bound counters on the recommendation.
func TestSolverReportsStats(t *testing.T) {
	specs := experiments.WaterIonsSpecs(16384)
	res := core.Resources{Steps: 1000, TimeThreshold: 129.35, MemThreshold: 12 << 30}
	rec, err := core.Solve(specs, res, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := rec.Stats
	if st.Nodes == 0 || st.Relaxations == 0 || st.Pivots == 0 {
		t.Fatalf("solver stats empty: %+v", st)
	}
	if st.BestBound < rec.Objective-1e-6 {
		t.Fatalf("terminal bound %g below objective %g", st.BestBound, rec.Objective)
	}
}

// BenchmarkSolverFull times the paper's verbatim time-indexed formulation at
// a small step count (the ablation for the compact reformulation).
func BenchmarkSolverFull(b *testing.B) {
	specs := []core.AnalysisSpec{
		{Name: "p", CT: 1, OT: 0.5, MinInterval: 3},
		{Name: "q", CT: 2, OT: 0.25, MinInterval: 4},
	}
	res := core.Resources{Steps: 12, TimeThreshold: 7}
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveFull(specs, res, core.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedyVsMILP reports the objective gap between the greedy
// baseline and the exact MILP on the Table-5 instance.
func BenchmarkAblationGreedyVsMILP(b *testing.B) {
	specs := experiments.WaterIonsSpecs(16384)
	res := core.Resources{Steps: 1000, TimeThreshold: 64.69, MemThreshold: 12 << 30}
	for i := 0; i < b.N; i++ {
		g, err := core.GreedySolve(specs, res)
		if err != nil {
			b.Fatal(err)
		}
		m, err := core.Solve(specs, res, core.SolveOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("greedy objective %.1f vs MILP %.1f (gap %.1f%%)",
				g.Objective, m.Objective, (m.Objective-g.Objective)/m.Objective*100)
		}
	}
}

// BenchmarkMDStep measures the LAMMPS-substitute step cost at two sizes so
// the linear scaling the performance model assumes is visible.
func BenchmarkMDStep(b *testing.B) {
	for _, atoms := range []int{2000, 8000} {
		b.Run(fmt.Sprintf("atoms=%d", atoms), func(b *testing.B) {
			sys, err := md.NewWaterIons(md.Config{NAtoms: atoms, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Step(0.002)
			}
		})
	}
}

// BenchmarkAMRStep measures the FLASH-substitute step cost.
func BenchmarkAMRStep(b *testing.B) {
	g, err := amr.NewSedov(amr.Config{BlocksX: 3, NB: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StepCFL()
	}
}

// BenchmarkRDFKernel measures one in-situ RDF analysis step.
func BenchmarkRDFKernel(b *testing.B) {
	sys, err := md.NewWaterIons(md.Config{NAtoms: 4000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	k, err := mdkernels.NewHydroniumRDF(sys, mdkernels.RDFConfig{Ranks: 4})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		b.Fatal(err)
	}
	sys.PrepareNeighbors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Analyze(i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllreduce measures the message-passing substrate's collective.
func BenchmarkAllreduce(b *testing.B) {
	w, err := comm.NewWorld(8)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.Run(func(r *comm.Rank) error {
			_, err := r.Allreduce(buf, comm.Sum)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedMDStep measures one slab-decomposed distributed MD
// step (halo exchange + migration + forces + integration) at 3 ranks.
func BenchmarkDistributedMDStep(b *testing.B) {
	sys, err := md.NewWaterIons(md.Config{NAtoms: 1500, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := md.RunDistributed(sys, 3, 1, 0.002); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacement times the in-situ/co-analysis placement MILP.
func BenchmarkPlacement(b *testing.B) {
	base := experiments.WaterIonsSpecs(16384)
	specs := make([]core.PlacementSpec, len(base))
	for i, a := range base {
		specs[i] = core.PlacementSpec{AnalysisSpec: a, TransferBytes: 1 << 30}
	}
	res := core.PlacementResources{
		Resources:      core.Resources{Steps: 1000, TimeThreshold: 64.69, MemThreshold: 12 << 30},
		NetBandwidth:   2e9,
		StageMemTotal:  64 << 30,
		StageTimeTotal: 2000,
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.SolvePlacement(specs, res, core.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLexicographic times the priority-class solver on the Table-8
// instance.
func BenchmarkLexicographic(b *testing.B) {
	specs := experiments.FlashSpecs()
	specs[0].Weight, specs[1].Weight, specs[2].Weight = 2, 1, 2
	res := core.Resources{Steps: 1000, TimeThreshold: 43.5, MemThreshold: 12 << 30}
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveLexicographic(specs, res, core.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBurstBuffer measures the NVRAM burst-buffer write path.
func BenchmarkBurstBuffer(b *testing.B) {
	bb := iosim.NewBurstBuffer(1 << 41)
	for i := 0; i < b.N; i++ {
		bb.SustainedOutputTime(91<<30, 10, 500*time.Second, 32768)
	}
}

// BenchmarkAMRRefine measures the global prolongation operator.
func BenchmarkAMRRefine(b *testing.B) {
	g, err := amr.NewSedov(amr.Config{BlocksX: 2, NB: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.RefineGlobally(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMemorySweep regenerates the mth ablation.
func BenchmarkAblationMemorySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MemorySweep()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatMemorySweep(rows))
		}
	}
}

// BenchmarkCouplingValidation runs the full measure-solve-execute loop on
// the real mini-app.
func BenchmarkCouplingValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v, err := experiments.ValidateCoupling(2000, 40, 15)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatCouplingValidation(v))
		}
	}
}

// BenchmarkAMRCheckpoint measures serializing the FLASH-style mesh state
// (what Table 7's 91 GB outputs are, at laptop scale).
func BenchmarkAMRCheckpoint(b *testing.B) {
	g, err := amr.NewSedov(amr.Config{BlocksX: 3, NB: 8})
	if err != nil {
		b.Fatal(err)
	}
	g.Run(3)
	b.SetBytes(g.CheckpointBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.WriteCheckpoint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeedHistogram measures the descriptive-statistics class kernel.
func BenchmarkSpeedHistogram(b *testing.B) {
	sys, err := md.NewWaterIons(md.Config{NAtoms: 4000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	k, err := mdkernels.NewSpeedHistogram(sys, 64, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Analyze(i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyAll regenerates and attests every scheduling experiment.
func BenchmarkVerifyAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		checks, err := experiments.VerifyAll()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatChecks(checks))
		}
	}
}
